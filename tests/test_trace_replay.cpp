// Tests for the trace-replay workload: strict CSV parsing, content
// digests, deterministic resampling across seeds/ports/loads, and the
// cache contract — a warm rerun hits, an edited trace file misses.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include "exp/cache.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "traffic/trace_replay.hpp"

namespace xdrs::traffic {
namespace {

using namespace xdrs::sim::literals;

// ---- parsing ---------------------------------------------------------------

TEST(FlowTraceParse, AcceptsHeaderCommentsCrlfAndOptionalPriority) {
  const FlowTrace t = FlowTrace::parse(
      "# synthetic example\n"
      "start_us,src,dst,bytes,priority\n"
      "0.5,0,1,1000,2\r\n"
      "\n"
      "2,3,0,64\n"
      "7.25,1,4,50000,1\n");
  ASSERT_EQ(t.records.size(), 3u);
  EXPECT_EQ(t.records[0].start, sim::Time::picoseconds(500'000));
  EXPECT_EQ(t.records[0].src, 0u);
  EXPECT_EQ(t.records[0].dst, 1u);
  EXPECT_EQ(t.records[0].bytes, 1000);
  EXPECT_EQ(t.records[0].priority, 2);
  EXPECT_EQ(t.records[1].priority, 0);  // omitted -> best effort
  EXPECT_EQ(t.max_port, 4u);
  EXPECT_EQ(t.total_bytes, 51'064);
  EXPECT_EQ(t.span, sim::Time::picoseconds(7'250'000));
}

TEST(FlowTraceParse, RejectsEveryMalformedShape) {
  const auto reject = [](const char* csv, const char* why) {
    EXPECT_THROW((void)FlowTrace::parse(csv), std::invalid_argument) << why;
  };
  reject("", "empty trace");
  reject("# only comments\n", "no records");
  reject("1,0,1\n", "too few fields");
  reject("1,0,1,100,2,9,0\n", "too many fields");
  reject("1x,0,1,100\n", "trailing garbage on start_us");
  reject("-1,0,1,100\n", "negative start");
  reject("1e13,0,1,100\n", "start_us past the ps-conversion range");
  reject("inf,0,1,100\n", "non-finite start_us");
  reject("1,0x,1,100\n", "trailing garbage on src");
  reject("1,0,1,100x\n", "trailing garbage on bytes");
  reject("1,0,1,0\n", "zero bytes");
  reject("1,0,1,-5\n", "negative bytes");
  reject("1,2,2,100\n", "src == dst");
  reject("1,0,1,100,3\n", "priority out of range");
  reject("1,0,1,100,2,-1\n", "negative deadline_us");
  reject("1,0,1,100,2,inf\n", "non-finite deadline_us");
  reject("1,0,1,100,2,9x\n", "trailing garbage on deadline_us");
  reject("1,0,1,100,2,1e13\n", "deadline_us past the ps-conversion range");
  reject("5,0,1,100\n2,1,0,100\n", "out-of-order start times");
}

TEST(FlowTraceParse, ErrorsNameTheOffendingLine) {
  try {
    (void)FlowTrace::parse("# header\n1,0,1,100\n2,0,1,bad\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos) << e.what();
  }
}

TEST(FlowTraceLoad, MissingFileThrowsNamingThePath) {
  try {
    (void)FlowTrace::load("/no/such/trace.csv");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("/no/such/trace.csv"), std::string::npos);
  }
}

TEST(TraceDigest, TracksContentNotPath) {
  EXPECT_NE(trace_digest("a,b"), trace_digest("a,c"));
  EXPECT_EQ(trace_digest("same"), trace_digest("same"));
  EXPECT_EQ(trace_digest_hex("/no/such/trace.csv"), "unreadable");
}

// ---- replay ----------------------------------------------------------------

/// A smooth trace (equal flows, evenly spaced) so windowed loads are
/// nearly exact, written to a fresh temp file per test.
class TraceReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process, per-test name: concurrent ctest runs must not race.
    path_ = (std::filesystem::temp_directory_path() /
             ("xdrs_trace_" + std::to_string(::getpid()) + "_" +
              std::string{::testing::UnitTest::GetInstance()->current_test_info()->name()} +
              ".csv"))
                .string();
    std::ofstream out{path_, std::ios::trunc};
    out << "start_us,src,dst,bytes,priority\n";
    for (int i = 0; i < 100; ++i) {
      const int src = i % 16;
      out << i * 10.0 << ',' << src << ',' << (src + 1 + i % 5) % 16 << ",50000," << i % 3
          << '\n';
    }
  }
  void TearDown() override { std::filesystem::remove(path_); }

  [[nodiscard]] exp::ScenarioSpec spec(std::uint32_t ports, double load,
                                       std::uint64_t seed) const {
    exp::ScenarioSpec s = exp::make_scenario("trace", ports, load, seed).with_window(2_ms, 200_us);
    s.workloads.front().trace_path = path_;
    return s;
  }

  std::string path_;
};

TEST_F(TraceReplayTest, ScaledSpanMatchesTheTargetRate) {
  TraceReplayGenerator::Config gc;
  gc.trace = load_trace_cached(path_);
  gc.ports = 4;
  gc.line_rate = sim::DataRate::gbps(10);
  gc.load = 0.5;
  gc.seed = 7;
  const TraceReplayGenerator gen{gc};
  // 5 MB at 4 x 10G x 0.5 = 2.5 GB/s -> 2 ms lap, scaled linearly within.
  EXPECT_NEAR(static_cast<double>(gen.scaled_span().ps()), 2e9, 1e6);
  EXPECT_EQ(gen.scaled_start(0).ps(), 0);
  EXPECT_NEAR(static_cast<double>(gen.scaled_start(99).ps()),
              static_cast<double>(gen.scaled_span().ps()), 1e6);
}

TEST_F(TraceReplayTest, ConfigValidationRejectsBadInputs) {
  TraceReplayGenerator::Config gc;
  gc.trace = load_trace_cached(path_);
  gc.ports = 4;
  gc.line_rate = sim::DataRate::gbps(10);
  gc.load = 0.5;

  TraceReplayGenerator::Config bad = gc;
  bad.trace = nullptr;
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
  bad = gc;
  bad.trace = std::make_shared<const FlowTrace>();  // no records
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
  bad = gc;
  bad.ports = 1;
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
  bad = gc;
  bad.load = 0.0;
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
  bad = gc;
  bad.load = 1.5;
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
  bad = gc;
  bad.line_rate = sim::DataRate{};
  EXPECT_THROW((void)TraceReplayGenerator{bad}, std::invalid_argument);
}

TEST_F(TraceReplayTest, ReplayIsDeterministicAndSeedSensitive) {
  const core::RunReport a = exp::run_scenario(spec(8, 0.5, 7));
  const core::RunReport b = exp::run_scenario(spec(8, 0.5, 7));
  EXPECT_EQ(a.to_json(), b.to_json());

  // A different seed remaps ports differently: same byte budget, different
  // simulation.
  const core::RunReport c = exp::run_scenario(spec(8, 0.5, 8));
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST_F(TraceReplayTest, OneTraceDrivesAnyPortCountAndLoad) {
  // The same file runs on 4 and 16 ports (remapping), and offered bytes
  // scale with the requested load (time scaling): the window sees ~2x the
  // bytes at 2x the load.
  for (const std::uint32_t ports : {4u, 16u}) {
    const core::RunReport lo = exp::run_scenario(spec(ports, 0.3, 7));
    const core::RunReport hi = exp::run_scenario(spec(ports, 0.6, 7));
    EXPECT_GT(lo.offered_bytes, 0) << ports;
    const double ratio =
        static_cast<double>(hi.offered_bytes) / static_cast<double>(lo.offered_bytes);
    EXPECT_NEAR(ratio, 2.0, 0.3) << ports;
  }
}

TEST_F(TraceReplayTest, CachedLoadServesOneParseAndTracksFileEdits) {
  const std::shared_ptr<const FlowTrace> first = load_trace_cached(path_);
  const std::shared_ptr<const FlowTrace> again = load_trace_cached(path_);
  EXPECT_EQ(first.get(), again.get());  // one parse, shared by every probe
  const std::string digest_before = trace_digest_hex(path_);
  EXPECT_EQ(trace_digest_hex(path_), digest_before);

  {
    std::ofstream out{path_, std::ios::app};
    out << "1500,0,1,64,0\n";
  }
  const std::shared_ptr<const FlowTrace> edited = load_trace_cached(path_);
  EXPECT_NE(first.get(), edited.get());
  EXPECT_EQ(edited->records.size(), first->records.size() + 1);
  EXPECT_NE(trace_digest_hex(path_), digest_before);
}

TEST_F(TraceReplayTest, WarmRerunHitsTheCacheEditedTraceMisses) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("xdrs_trace_cache_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  std::vector<exp::ScenarioSpec> grid{spec(4, 0.3, 7), spec(4, 0.6, 7)};
  const std::uint64_t hash_before = exp::spec_hash(grid[0]);
  {
    exp::ResultCache cold{dir};
    exp::SweepOptions opts;
    opts.cache = &cold;
    const exp::SweepResult first = exp::ExperimentRunner{opts}.run(grid);
    EXPECT_EQ(cold.stats().misses, grid.size());
    EXPECT_EQ(cold.stats().stores, grid.size());

    // Warm rerun: every point comes from disk, zero simulations.
    exp::ResultCache warm{dir};
    opts.cache = &warm;
    const exp::SweepResult second = exp::ExperimentRunner{opts}.run(grid);
    EXPECT_EQ(warm.stats().hits, grid.size());
    EXPECT_EQ(warm.stats().misses, 0u);
    EXPECT_EQ(warm.stats().stores, 0u);
    EXPECT_EQ(second.to_json(), first.to_json());
  }

  // Change the trace file's bytes (even just a comment): the content
  // digest, hence the spec hash, hence the cache key all change — the old
  // entries are never served for the new trace.
  {
    std::ofstream out{path_, std::ios::app};
    out << "# retraced\n";
  }
  EXPECT_NE(exp::spec_hash(grid[0]), hash_before);
  EXPECT_NE(grid[0].identity_json().find("\"trace_digest\""), std::string::npos);

  exp::ResultCache after{dir};
  exp::SweepOptions opts;
  opts.cache = &after;
  (void)exp::ExperimentRunner{opts}.run(grid);
  EXPECT_EQ(after.stats().hits, 0u);
  EXPECT_EQ(after.stats().misses, grid.size());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xdrs::traffic
