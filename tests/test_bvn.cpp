// Tests for the Birkhoff–von-Neumann decomposition and its circuit
// scheduler adapter.
#include <gtest/gtest.h>

#include "schedulers/bvn.hpp"
#include "sim/random.hpp"

namespace xdrs::schedulers {
namespace {

demand::DemandMatrix random_demand(std::uint32_t n, sim::Rng& rng, double density) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 5000));
    }
  }
  return m;
}

/// Sums the real service each pair receives across terms, capped per term
/// at the pair's remaining demand — mirrors the decomposition's accounting.
demand::DemandMatrix served_by(const BvnResult& r, const demand::DemandMatrix& d) {
  demand::DemandMatrix remaining = d;
  for (const auto& t : r.terms) {
    t.permutation.for_each_pair([&](net::PortId i, net::PortId j) {
      remaining.subtract_clamped(i, j, t.weight);
    });
  }
  return remaining;
}

TEST(Bvn, EmptyMatrixYieldsNoTerms) {
  const BvnResult r = bvn_decompose(demand::DemandMatrix{4});
  EXPECT_TRUE(r.terms.empty());
  EXPECT_EQ(r.uncovered_bytes, 0);
}

TEST(Bvn, RequiresSquareMatrix) {
  EXPECT_THROW((void)bvn_decompose(demand::DemandMatrix{2, 3}), std::invalid_argument);
}

TEST(Bvn, SinglePairIsOneishTerm) {
  demand::DemandMatrix d{3};
  d.set(0, 2, 1000);
  const BvnResult r = bvn_decompose(d);
  ASSERT_FALSE(r.terms.empty());
  EXPECT_EQ(r.uncovered_bytes, 0);
  EXPECT_EQ(served_by(r, d).total(), 0);
}

TEST(Bvn, PermutationMatrixDecomposesToItself) {
  demand::DemandMatrix d{4};
  for (net::PortId i = 0; i < 4; ++i) d.set(i, (i + 1) % 4, 700);
  const BvnResult r = bvn_decompose(d);
  ASSERT_EQ(r.terms.size(), 1u);
  EXPECT_EQ(r.terms[0].weight, 700);
  EXPECT_TRUE(r.terms[0].permutation.is_perfect());
  for (net::PortId i = 0; i < 4; ++i) {
    EXPECT_EQ(r.terms[0].permutation.output_of(i), (i + 1) % 4);
  }
}

TEST(Bvn, TermsAreAlwaysPerfectPermutations) {
  sim::Rng rng{3};
  const auto d = random_demand(6, rng, 0.5);
  for (const auto& t : bvn_decompose(d).terms) {
    EXPECT_TRUE(t.permutation.is_perfect());
    EXPECT_GT(t.weight, 0);
  }
}

TEST(Bvn, FullCoverageWithoutTermLimit) {
  sim::Rng rng{5};
  for (int round = 0; round < 10; ++round) {
    const auto d = random_demand(8, rng, 0.4);
    const BvnResult r = bvn_decompose(d);
    EXPECT_EQ(r.uncovered_bytes, 0);
    EXPECT_EQ(served_by(r, d).total(), 0) << "round " << round;
  }
}

TEST(Bvn, TermCountWithinBirkhoffBound) {
  // Birkhoff: at most (n-1)^2 + 1 permutations for an n x n matrix.
  sim::Rng rng{7};
  const std::uint32_t n = 6;
  for (int round = 0; round < 10; ++round) {
    const auto d = random_demand(n, rng, 0.6);
    const BvnResult r = bvn_decompose(d);
    EXPECT_LE(r.terms.size(), (n - 1) * (n - 1) + 1);
  }
}

TEST(Bvn, MaxTermsTruncatesAndReportsUncovered) {
  sim::Rng rng{9};
  const auto d = random_demand(8, rng, 0.8);
  const BvnResult full = bvn_decompose(d);
  if (full.terms.size() < 3) GTEST_SKIP() << "matrix decomposed too easily";
  const BvnResult cut = bvn_decompose(d, 2);
  EXPECT_EQ(cut.terms.size(), 2u);
  EXPECT_GT(cut.uncovered_bytes, 0);
  EXPECT_EQ(cut.uncovered_bytes, served_by(cut, d).total());
}

TEST(Bvn, RealBytesAccounting) {
  sim::Rng rng{11};
  const auto d = random_demand(5, rng, 0.5);
  const BvnResult r = bvn_decompose(d);
  std::int64_t real_total = 0;
  for (const auto& t : r.terms) real_total += t.real_bytes;
  EXPECT_EQ(real_total, d.total());
}

TEST(BvnScheduler, ResidualIsExactlyUnplannedDemand) {
  sim::Rng rng{13};
  const auto d = random_demand(6, rng, 0.5);
  BvnScheduler sched{2};
  const CircuitPlan plan = sched.plan(d);
  EXPECT_LE(plan.slots.size(), 2u);

  // Re-derive the residual independently and compare.
  demand::DemandMatrix expect = d;
  for (const auto& s : plan.slots) {
    s.configuration.for_each_pair([&](net::PortId i, net::PortId j) {
      expect.subtract_clamped(i, j, s.weight_bytes);
    });
  }
  EXPECT_EQ(plan.residual, expect);
}

TEST(BvnScheduler, KeepsHeaviestSlots) {
  demand::DemandMatrix d{4};
  d.set(0, 1, 10'000);  // elephant
  d.set(1, 0, 10'000);  // elephant
  d.set(2, 3, 10);      // mouse
  d.set(3, 2, 10);      // mouse
  BvnScheduler sched{1};
  const CircuitPlan plan = sched.plan(d);
  ASSERT_EQ(plan.slots.size(), 1u);
  // The kept slot must serve the elephants.
  EXPECT_EQ(plan.slots[0].configuration.output_of(0), 1u);
  EXPECT_EQ(plan.slots[0].configuration.output_of(1), 0u);
}

TEST(BvnScheduler, NameEncodesSlotBudget) {
  EXPECT_EQ(BvnScheduler{3}.name(), "bvn-3");
}

}  // namespace
}  // namespace xdrs::schedulers
