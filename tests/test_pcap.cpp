// Tests for the dependency-free capture reader: classic pcap in all four
// magic variants, pcapng with per-section byte order and if_tsresol,
// Ethernet/VLAN/raw-IP link layers, graceful skipping of non-IPv4 noise,
// strict rejection of structural corruption — and the flow folding that
// turns a capture into a trace-replay CSV FlowTrace::parse accepts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "traffic/pcap.hpp"
#include "traffic/trace_replay.hpp"

namespace xdrs::traffic {
namespace {

// ---- byte-level builders ---------------------------------------------------

void u8(std::string& s, unsigned v) { s.push_back(static_cast<char>(v & 0xff)); }

void u16le(std::string& s, unsigned v) {
  u8(s, v);
  u8(s, v >> 8);
}
void u16be(std::string& s, unsigned v) {
  u8(s, v >> 8);
  u8(s, v);
}
void u32le(std::string& s, unsigned long v) {
  u8(s, static_cast<unsigned>(v));
  u8(s, static_cast<unsigned>(v >> 8));
  u8(s, static_cast<unsigned>(v >> 16));
  u8(s, static_cast<unsigned>(v >> 24));
}
void u32be(std::string& s, unsigned long v) {
  u8(s, static_cast<unsigned>(v >> 24));
  u8(s, static_cast<unsigned>(v >> 16));
  u8(s, static_cast<unsigned>(v >> 8));
  u8(s, static_cast<unsigned>(v));
}

/// An Ethernet/IPv4/TCP-or-UDP frame with the fields the decoder reads.
std::string eth_frame(std::uint32_t src_addr, std::uint32_t dst_addr, unsigned proto,
                      unsigned src_port, unsigned dst_port, int vlan_tags = 0) {
  std::string f(12, '\0');  // MAC addresses: irrelevant
  for (int i = 0; i < vlan_tags; ++i) {
    u16be(f, 0x8100);
    u16be(f, 0x0001);  // tag control
  }
  u16be(f, 0x0800);  // IPv4
  u8(f, 0x45);       // version 4, IHL 5
  u8(f, 0);          // TOS
  u16be(f, 40);      // total length (unused by the decoder)
  u32be(f, 0);       // id + flags
  u8(f, 64);         // TTL
  u8(f, proto);
  u16be(f, 0);  // checksum
  u32be(f, src_addr);
  u32be(f, dst_addr);
  u16be(f, src_port);
  u16be(f, dst_port);
  f.append(16, '\0');  // rest of the transport header
  return f;
}

std::string classic_header(unsigned long magic_value, bool big_endian,
                           unsigned long link_type = 1) {
  std::string s;
  const auto put32 = big_endian ? u32be : u32le;
  const auto put16 = big_endian ? u16be : u16le;
  put32(s, magic_value);
  put16(s, 2);
  put16(s, 4);
  put32(s, 0);       // thiszone
  put32(s, 0);       // sigfigs
  put32(s, 65535);   // snaplen
  put32(s, link_type);
  return s;
}

void classic_record(std::string& s, bool big_endian, unsigned long sec, unsigned long frac,
                    const std::string& frame, unsigned long orig_len = 0) {
  const auto put32 = big_endian ? u32be : u32le;
  put32(s, sec);
  put32(s, frac);
  put32(s, frame.size());
  put32(s, orig_len != 0 ? orig_len : frame.size());
  s += frame;
}

// ---- classic pcap ----------------------------------------------------------

TEST(PcapClassic, ParsesMicrosecondLittleEndianCaptures) {
  std::string file = classic_header(0xa1b2c3d4ul, false);
  classic_record(file, false, 10, 500, eth_frame(0x0a000001, 0x0a000002, 6, 1234, 80), 1500);
  classic_record(file, false, 10, 900, eth_frame(0x0a000002, 0x0a000001, 17, 5004, 5004));

  const PcapCapture cap = parse_pcap(file);
  EXPECT_EQ(cap.skipped, 0u);
  ASSERT_EQ(cap.packets.size(), 2u);
  EXPECT_EQ(cap.packets[0].time_ns, 10u * 1'000'000'000ull + 500'000ull);
  EXPECT_EQ(cap.packets[0].src_addr, 0x0a000001u);
  EXPECT_EQ(cap.packets[0].dst_addr, 0x0a000002u);
  EXPECT_EQ(cap.packets[0].proto, 6);
  EXPECT_EQ(cap.packets[0].src_port, 1234);
  EXPECT_EQ(cap.packets[0].dst_port, 80);
  EXPECT_EQ(cap.packets[0].bytes, 1500u);  // orig_len wins over the captured slice
  EXPECT_EQ(cap.packets[1].proto, 17);
}

TEST(PcapClassic, HandlesNanosecondAndBigEndianMagics) {
  // Nanosecond little-endian: the fraction is already ns.
  std::string ns_file = classic_header(0xa1b23c4dul, false);
  classic_record(ns_file, false, 1, 12345, eth_frame(1, 2, 6, 1, 2));
  EXPECT_EQ(parse_pcap(ns_file).packets.at(0).time_ns, 1'000'000'000ull + 12'345ull);

  // Big-endian microsecond: the same magic bytes in the other order.
  std::string be_file = classic_header(0xa1b2c3d4ul, true);
  classic_record(be_file, true, 2, 7, eth_frame(3, 4, 17, 9, 10));
  const PcapCapture cap = parse_pcap(be_file);
  ASSERT_EQ(cap.packets.size(), 1u);
  EXPECT_EQ(cap.packets[0].time_ns, 2'000'000'000ull + 7'000ull);
  EXPECT_EQ(cap.packets[0].src_addr, 3u);
  EXPECT_EQ(cap.packets[0].dst_port, 10);
}

TEST(PcapClassic, DecodesVlanTagsSkipsNonIpv4AndReadsRawIp) {
  std::string file = classic_header(0xa1b2c3d4ul, false);
  classic_record(file, false, 1, 0, eth_frame(1, 2, 6, 1, 2, /*vlan_tags=*/1));
  std::string arp(12, '\0');
  u16be(arp, 0x0806);
  arp.append(28, '\0');
  classic_record(file, false, 1, 1, arp);
  const PcapCapture cap = parse_pcap(file);
  EXPECT_EQ(cap.packets.size(), 1u);  // the VLAN-tagged IPv4 frame
  EXPECT_EQ(cap.skipped, 1u);         // the ARP frame

  // Raw-IP link layer: the frame starts at the IPv4 header.
  std::string raw_file = classic_header(0xa1b2c3d4ul, false, /*link_type=*/101);
  const std::string eth = eth_frame(7, 8, 17, 53, 53);
  classic_record(raw_file, false, 1, 0, eth.substr(14));
  const PcapCapture raw = parse_pcap(raw_file);
  ASSERT_EQ(raw.packets.size(), 1u);
  EXPECT_EQ(raw.packets[0].src_addr, 7u);
  EXPECT_EQ(raw.packets[0].proto, 17);
}

TEST(PcapClassic, RejectsCorruptStructures) {
  EXPECT_THROW((void)parse_pcap(""), std::invalid_argument);
  EXPECT_THROW((void)parse_pcap("abc"), std::invalid_argument);
  std::string bad_magic;
  u32le(bad_magic, 0xdeadbeeful);
  bad_magic.append(20, '\0');
  EXPECT_THROW((void)parse_pcap(bad_magic), std::invalid_argument);

  // Record header cut short.
  std::string truncated = classic_header(0xa1b2c3d4ul, false);
  truncated.append(8, '\0');
  EXPECT_THROW((void)parse_pcap(truncated), std::invalid_argument);

  // Record claims more data than the file holds.
  std::string overrun = classic_header(0xa1b2c3d4ul, false);
  u32le(overrun, 1);
  u32le(overrun, 0);
  u32le(overrun, 4096);  // incl_len
  u32le(overrun, 4096);
  overrun.append(10, '\0');
  EXPECT_THROW((void)parse_pcap(overrun), std::invalid_argument);

  // A link layer we cannot decode is an error, not silence.
  std::string sll = classic_header(0xa1b2c3d4ul, false, /*link_type=*/113);
  classic_record(sll, false, 1, 0, eth_frame(1, 2, 6, 1, 2));
  EXPECT_THROW((void)parse_pcap(sll), std::invalid_argument);
}

// ---- pcapng ----------------------------------------------------------------

void ng_block(std::string& s, unsigned long type, const std::string& body) {
  const unsigned long total = 12 + ((body.size() + 3) & ~3ul);
  u32le(s, type);
  u32le(s, total);
  s += body;
  s.append(total - 12 - body.size(), '\0');  // pad to 32 bits
  u32le(s, total);
}

std::string ng_shb() {
  std::string body;
  u32le(body, 0x1a2b3c4dul);  // byte-order magic
  u16le(body, 1);             // version 1.0
  u16le(body, 0);
  u32le(body, 0xfffffffful);  // section length unknown
  u32le(body, 0xfffffffful);
  std::string s;
  ng_block(s, 0x0a0d0d0aul, body);
  return s;
}

std::string ng_idb(unsigned tsresol) {
  std::string body;
  u16le(body, 1);  // LINKTYPE_ETHERNET
  u16le(body, 0);
  u32le(body, 65535);  // snaplen
  if (tsresol != 0) {
    u16le(body, 9);  // if_tsresol
    u16le(body, 1);
    u8(body, tsresol);
    body.append(3, '\0');  // option padding
    u16le(body, 0);        // opt_endofopt
    u16le(body, 0);
  }
  std::string s;
  ng_block(s, 1, body);
  return s;
}

std::string ng_epb(unsigned long long ts, const std::string& frame) {
  std::string body;
  u32le(body, 0);  // interface 0
  u32le(body, static_cast<unsigned long>(ts >> 32));
  u32le(body, static_cast<unsigned long>(ts & 0xffffffffull));
  u32le(body, frame.size());
  u32le(body, frame.size());
  body += frame;
  std::string s;
  ng_block(s, 6, body);
  return s;
}

TEST(Pcapng, ParsesEnhancedPacketBlocksWithTsresol) {
  // Nanosecond resolution (if_tsresol = 9): the timestamp is ns verbatim.
  const std::string file =
      ng_shb() + ng_idb(9) + ng_epb(123'456'789ull, eth_frame(5, 6, 6, 80, 443));
  const PcapCapture cap = parse_pcap(file);
  ASSERT_EQ(cap.packets.size(), 1u);
  EXPECT_EQ(cap.packets[0].time_ns, 123'456'789ull);
  EXPECT_EQ(cap.packets[0].src_addr, 5u);
  EXPECT_EQ(cap.packets[0].dst_port, 443);

  // Default resolution (no option): microsecond ticks.
  const std::string us_file = ng_shb() + ng_idb(0) + ng_epb(1000, eth_frame(5, 6, 6, 80, 443));
  EXPECT_EQ(parse_pcap(us_file).packets.at(0).time_ns, 1'000'000ull);
}

TEST(Pcapng, RejectsCorruptBlocksAndUnknownInterfaces) {
  // EPB before any IDB: interface 0 does not exist.
  EXPECT_THROW((void)parse_pcap(ng_shb() + ng_epb(0, eth_frame(1, 2, 6, 1, 2))),
               std::invalid_argument);
  // A lying block length.
  std::string bad = ng_shb();
  bad[4] = 13;  // total_len not a multiple of 4
  EXPECT_THROW((void)parse_pcap(bad), std::invalid_argument);
}

// ---- flow folding ----------------------------------------------------------

TEST(TraceFromPcap, FoldsFlowsAndRoundTripsThroughTheTraceParser) {
  std::string file = classic_header(0xa1b2c3d4ul, false);
  // TCP elephant: two packets, same 5-tuple, 1 ms apart (within the gap).
  classic_record(file, false, 1, 0, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 900'000);
  classic_record(file, false, 1, 1000, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 200'000);
  // Same tuple again after a 2 s silence: a NEW flow.
  classic_record(file, false, 3, 0, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 5'000);
  // UDP chatter the other way: latency-sensitive priority.
  classic_record(file, false, 1, 500, eth_frame(0x0a000002, 0x0a000001, 17, 5004, 5004), 200);

  const std::string csv = trace_from_pcap(parse_pcap(file));
  const FlowTrace trace = FlowTrace::parse(csv);  // strictness is the contract
  ASSERT_EQ(trace.records.size(), 3u);

  // Flow 1: the two-packet TCP elephant, 1.1 MB -> priority 1.
  EXPECT_EQ(trace.records[0].start, sim::Time::zero());
  EXPECT_EQ(trace.records[0].bytes, 1'100'000);
  EXPECT_EQ(trace.records[0].priority, 1);
  EXPECT_EQ(trace.records[0].src, 0u);  // 10.0.0.1 seen first
  EXPECT_EQ(trace.records[0].dst, 1u);
  // Flow 2: the UDP packet 500 us later -> priority 2, reversed ports.
  EXPECT_EQ(trace.records[1].start, sim::Time::microseconds(500));
  EXPECT_EQ(trace.records[1].bytes, 200);
  EXPECT_EQ(trace.records[1].priority, 2);
  EXPECT_EQ(trace.records[1].src, 1u);
  EXPECT_EQ(trace.records[1].dst, 0u);
  // Flow 3: the split re-use of the tuple, small -> priority 0.
  EXPECT_EQ(trace.records[2].start, sim::Time::seconds_f(2.0));
  EXPECT_EQ(trace.records[2].bytes, 5'000);
  EXPECT_EQ(trace.records[2].priority, 0);
}

TEST(TraceFromPcap, SloOptionsEmitDeadlinesThatRoundTrip) {
  std::string file = classic_header(0xa1b2c3d4ul, false);
  // The same mix as above: an elephant, a UDP mouse, a best-effort flow.
  classic_record(file, false, 1, 0, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 900'000);
  classic_record(file, false, 1, 1000, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 200'000);
  classic_record(file, false, 3, 0, eth_frame(0x0a000001, 0x0a000002, 6, 4000, 80), 5'000);
  classic_record(file, false, 1, 500, eth_frame(0x0a000002, 0x0a000001, 17, 5004, 5004), 200);

  TraceOptions opts;
  opts.slo_rate_gbps = 1.0;
  opts.slo_slack_us = 50.0;
  const std::string csv = trace_from_pcap(parse_pcap(file), opts);
  EXPECT_NE(csv.find("start_us,src,dst,bytes,priority,deadline_us"), std::string::npos);
  const FlowTrace trace = FlowTrace::parse(csv);  // strict parser accepts 6 cols
  ASSERT_EQ(trace.records.size(), 3u);
  // Elephants get no deadline (0 = none); everything else gets
  // bytes / slo_rate + slack, relative to the flow's own start.
  EXPECT_TRUE(trace.records[0].deadline.is_zero());  // the 1.1 MB elephant
  // UDP mouse: 200 B at 1 Gbps = 1.6 us, + 50 us slack.
  EXPECT_EQ(trace.records[1].deadline, sim::Time::microseconds(50) +
                                           sim::Time::picoseconds(1'600'000));
  // Best-effort flow: 5000 B -> 40 us + 50 us slack.
  EXPECT_EQ(trace.records[2].deadline, sim::Time::microseconds(90));
  // Without the option the output is the bare 5-column format.
  EXPECT_EQ(trace_from_pcap(parse_pcap(file)).find("deadline_us"), std::string::npos);
}

TEST(TraceFromPcap, RejectsCapturesWithNoUsableFlows) {
  EXPECT_THROW((void)trace_from_pcap(PcapCapture{}), std::invalid_argument);
  // Self-addressed packets cannot be replayed (src == dst after mapping).
  std::string file = classic_header(0xa1b2c3d4ul, false);
  classic_record(file, false, 1, 0, eth_frame(9, 9, 6, 1, 2));
  EXPECT_THROW((void)trace_from_pcap(parse_pcap(file)), std::invalid_argument);

  TraceOptions bad;
  bad.flow_gap_us = 0.0;
  EXPECT_THROW((void)trace_from_pcap(PcapCapture{}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace xdrs::traffic
