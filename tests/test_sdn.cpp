// Tests for the SDN layer: flow install/modify/remove, per-flow counters,
// the SERENA matcher, and the elephant-pinning reactive application.
#include <gtest/gtest.h>

#include <memory>

#include "control/sdn.hpp"
#include "core/framework.hpp"
#include "schedulers/policy_registry.hpp"
#include "schedulers/hungarian.hpp"
#include "schedulers/serena.hpp"
#include "topo/testbed.hpp"

namespace xdrs {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

net::Packet classified_packet(std::uint32_t src_addr, std::uint32_t dst_addr,
                              std::int64_t bytes = 1000) {
  net::Packet p;
  p.size_bytes = bytes;
  p.tuple.src_addr = src_addr;
  p.tuple.dst_addr = dst_addr;
  return p;
}

// --------------------------------------------------------------- controller

TEST(SdnController, InstallAssignsUniqueIds) {
  net::Classifier cl;
  control::SdnController sdn{cl};
  const auto a = sdn.install(net::Rule{});
  const auto b = sdn.install(net::Rule{});
  EXPECT_NE(a, b);
  EXPECT_EQ(sdn.installed_flows(), 2u);
  EXPECT_EQ(cl.rule_count(), 2u);
}

TEST(SdnController, RemoveDeletesRule) {
  net::Classifier cl;
  control::SdnController sdn{cl};
  net::Rule r;
  r.dst_addr_value = 5;
  r.dst_addr_mask = 0xffffffff;
  r.verdict = net::Verdict{3, net::TrafficClass::kThroughput};
  const auto id = sdn.install(r);

  EXPECT_EQ(cl.classify(classified_packet(1, 5), {}).out_port, 3u);
  EXPECT_TRUE(sdn.remove(id));
  EXPECT_EQ(cl.classify(classified_packet(1, 5), net::Verdict{9, {}}).out_port, 9u);
  EXPECT_FALSE(sdn.remove(id));  // already gone
  EXPECT_EQ(sdn.installed_flows(), 0u);
}

TEST(SdnController, FlowStatsCountMatches) {
  net::Classifier cl;
  control::SdnController sdn{cl};
  net::Rule r;
  r.dst_addr_value = 7;
  r.dst_addr_mask = 0xffffffff;
  const auto id = sdn.install(r);

  (void)cl.classify(classified_packet(1, 7, 100), {});
  (void)cl.classify(classified_packet(1, 7, 200), {});  // cache hit, still counted
  (void)cl.classify(classified_packet(1, 8, 400), {});  // different flow, no match

  const net::RuleCounters c = sdn.flow_stats(id);
  EXPECT_EQ(c.packets, 2u);
  EXPECT_EQ(c.bytes, 300);
}

TEST(SdnController, ModifyKeepsIdentityAndCounters) {
  net::Classifier cl;
  control::SdnController sdn{cl};
  net::Rule r;
  r.dst_addr_value = 7;
  r.dst_addr_mask = 0xffffffff;
  r.verdict = net::Verdict{1, net::TrafficClass::kBestEffort};
  const auto id = sdn.install(r);
  (void)cl.classify(classified_packet(1, 7, 100), {});

  net::Rule updated = r;
  updated.verdict = net::Verdict{2, net::TrafficClass::kThroughput};
  EXPECT_TRUE(sdn.modify(id, updated));
  EXPECT_EQ(cl.classify(classified_packet(1, 7, 50), {}).out_port, 2u);
  EXPECT_EQ(sdn.flow_stats(id).packets, 2u);  // counters survived
  EXPECT_EQ(sdn.installed_flows(), 1u);
}

TEST(SdnController, UnknownFlowOperationsFail) {
  net::Classifier cl;
  control::SdnController sdn{cl};
  EXPECT_FALSE(sdn.remove(42));
  EXPECT_FALSE(sdn.modify(42, net::Rule{}));
  EXPECT_EQ(sdn.flow_stats(42).packets, 0u);
}

TEST(Classifier, RemoveRuleById) {
  net::Classifier cl;
  net::Rule r;
  r.id = 77;
  cl.add_rule(r);
  cl.add_rule(r);  // two rules sharing an id
  EXPECT_EQ(cl.remove_rule(77), 2u);
  EXPECT_EQ(cl.remove_rule(77), 0u);
}

// ------------------------------------------------------------------ SERENA

demand::DemandMatrix random_demand(std::uint32_t n, sim::Rng& rng, double density) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 10'000));
    }
  }
  return m;
}

TEST(Serena, RespectsDemandAndConflictFreedom) {
  schedulers::SerenaMatcher s{8, 5};
  sim::Rng rng{31};
  for (int round = 0; round < 30; ++round) {
    const auto d = random_demand(8, rng, 0.4);
    const schedulers::Matching m = s.compute(d);
    m.for_each_pair([&](net::PortId i, net::PortId j) { EXPECT_GT(d.at(i, j), 0); });
  }
}

TEST(Serena, WeightNeverBelowPreviousOnStaticDemand) {
  // The merge keeps the heavier side of every component, so on a fixed
  // demand matrix the carried weight is non-decreasing over slots.
  schedulers::SerenaMatcher s{8, 7};
  sim::Rng rng{33};
  const auto d = random_demand(8, rng, 0.6);
  std::int64_t prev = 0;
  for (int slot = 0; slot < 20; ++slot) {
    const auto m = s.compute(d);
    const std::int64_t w = schedulers::HungarianMatcher::matching_weight(m, d);
    EXPECT_GE(w, prev) << "slot " << slot;
    prev = w;
  }
}

TEST(Serena, ConvergesTowardsMaxWeight) {
  schedulers::SerenaMatcher s{6, 11};
  schedulers::HungarianMatcher exact;
  sim::Rng rng{35};
  const auto d = random_demand(6, rng, 0.7);
  const std::int64_t optimal =
      schedulers::HungarianMatcher::matching_weight(exact.compute(d), d);
  std::int64_t final_weight = 0;
  for (int slot = 0; slot < 50; ++slot) {
    final_weight = schedulers::HungarianMatcher::matching_weight(s.compute(d), d);
  }
  EXPECT_GE(final_weight * 10, optimal * 8);  // within 80% after settling
}

TEST(Serena, DropsDrainedPairs) {
  schedulers::SerenaMatcher s{4, 13};
  demand::DemandMatrix d{4};
  d.set(0, 1, 100);
  (void)s.compute(d);
  d.set(0, 1, 0);  // demand drained
  d.set(2, 3, 50);
  const auto m = s.compute(d);
  EXPECT_FALSE(m.output_of(0).has_value());
  EXPECT_EQ(m.output_of(2), 3u);
}

TEST(Serena, FactorySpec) {
  auto m = schedulers::PolicyRegistry::instance().make_matcher("serena", {.ports = 8, .seed = 3});
  EXPECT_EQ(m->name(), "serena");
  EXPECT_FALSE(m->hardware_parallel());
}

// ---------------------------------------------------------- elephant pinner

TEST(ElephantPinner, ValidatesConfig) {
  sim::Simulator sim;
  net::Classifier cl;
  control::SdnController sdn{cl};
  queueing::VoqBank voqs{2, 2};
  control::ElephantPinner::Config bad;
  bad.poll_period = Time::zero();
  EXPECT_THROW(control::ElephantPinner(sim, sdn, voqs, bad), std::invalid_argument);
  bad = {};
  bad.pin_threshold_bytes = 10;
  bad.unpin_threshold_bytes = 20;
  EXPECT_THROW(control::ElephantPinner(sim, sdn, voqs, bad), std::invalid_argument);
}

TEST(ElephantPinner, PinsAndUnpinsWithHysteresis) {
  sim::Simulator sim;
  net::Classifier cl;
  control::SdnController sdn{cl};
  queueing::VoqBank voqs{2, 2};
  control::ElephantPinner::Config cfg;
  cfg.poll_period = 10_us;
  cfg.pin_threshold_bytes = 1000;
  cfg.unpin_threshold_bytes = 100;
  control::ElephantPinner pinner{sim, sdn, voqs, cfg};
  pinner.start(1_ms);

  // Build a backlog above the pin threshold.
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1500;
  (void)voqs.enqueue(0, p);
  sim.run_until(15_us);
  EXPECT_EQ(pinner.pinned_pairs(), 1u);
  EXPECT_EQ(sdn.installed_flows(), 1u);

  // Between thresholds: stays pinned.
  (void)voqs.dequeue(0, 1);
  p.size_bytes = 500;
  (void)voqs.enqueue(0, p);
  sim.run_until(30_us);
  EXPECT_EQ(pinner.pinned_pairs(), 1u);

  // Drained below the unpin threshold: rule withdrawn.
  (void)voqs.dequeue(0, 1);
  sim.run_until(50_us);
  EXPECT_EQ(pinner.pinned_pairs(), 0u);
  EXPECT_EQ(sdn.installed_flows(), 0u);
  EXPECT_EQ(pinner.pin_events(), 1u);
  EXPECT_EQ(pinner.unpin_events(), 1u);
}

TEST(ElephantPinner, PinnedRuleRetargetsTrafficClass) {
  sim::Simulator sim;
  net::Classifier cl;
  control::SdnController sdn{cl};
  queueing::VoqBank voqs{2, 2};
  control::ElephantPinner pinner{sim, sdn, voqs,
                                 control::ElephantPinner::Config{10_us, 1000, 100}};
  pinner.start(100_us);
  net::Packet backlog;
  backlog.src = 0;
  backlog.dst = 1;
  backlog.size_bytes = 2000;
  (void)voqs.enqueue(0, backlog);
  sim.run_until(15_us);

  // A packet of the pinned pair now classifies as throughput class.
  net::Packet probe = classified_packet(0x0a000000u, 0x0a000001u);
  const net::Verdict v = cl.classify(probe, net::Verdict{1, net::TrafficClass::kBestEffort});
  EXPECT_EQ(v.tclass, net::TrafficClass::kThroughput);
  EXPECT_EQ(v.out_port, 1u);
}

TEST(ElephantPinner, EndToEndOnFramework) {
  // Run the pinner as an SDN app against a live framework: bursty traffic
  // must produce pin events and the pinned rules must accumulate counters.
  core::FrameworkConfig c;
  c.ports = 4;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  core::HybridSwitchFramework fw{c};
  fw.use_default_policies();

  control::SdnController sdn{fw.classifier()};
  control::ElephantPinner pinner{fw.simulator(), sdn, fw.processing().voqs(),
                                 control::ElephantPinner::Config{50_us, 32'768, 1024}};
  pinner.start(8_ms);

  topo::WorkloadSpec bursts;
  bursts.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  bursts.mean_on = 100_us;
  bursts.mean_off = 100_us;
  bursts.seed = 3;
  topo::attach_workload(fw, bursts);

  const core::RunReport r = fw.run(8_ms, 1_ms);
  EXPECT_GT(pinner.pin_events(), 0u);
  EXPECT_GT(r.delivery_ratio(), 0.8);
  // At least one pinned flow saw traffic.
  std::uint64_t counted = 0;
  for (const auto id : sdn.flow_ids()) counted += sdn.flow_stats(id).packets;
  if (sdn.installed_flows() > 0) {
    EXPECT_GT(counted, 0u);
  }
}

}  // namespace
}  // namespace xdrs
