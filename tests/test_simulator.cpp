// Tests for the event queue and the discrete-event engine: ordering,
// determinism, cancellation and horizon semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace xdrs::sim {
namespace {

using namespace xdrs::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(3_us, [&] { order.push_back(3); });
  (void)q.push(1_us, [&] { order.push_back(1); });
  (void)q.push(2_us, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.push(5_us, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1_us, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.push(1_us, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1_us, [] {});
  (void)q.push(2_us, [] {});
  EXPECT_EQ(q.size(), 2u);
  (void)q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.push(1_us, [] {});
  (void)q.push(7_us, [] {});
  (void)q.cancel(a);
  EXPECT_EQ(q.next_time(), 7_us);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> stamps;
  sim.schedule(2_us, [&] { stamps.push_back(sim.now().ps()); });
  sim.schedule(1_us, [&] { stamps.push_back(sim.now().ps()); });
  sim.run();
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{(1_us).ps(), (2_us).ps()}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_us, [&] {
    ++fired;
    sim.schedule(1_us, [&] {
      ++fired;
      sim.schedule(1_us, [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 3_us);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_us, [&] { ++fired; });
  sim.schedule(10_us, [&] { ++fired; });
  sim.run_until(5_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5_us);
  sim.run_until(10_us);  // the horizon event itself still executes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.run_until(3_us);
  EXPECT_EQ(sim.now(), 3_us);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(5_us, [&] {
    sim.schedule(1_us - 3_us, [&] { EXPECT_EQ(sim.now(), 5_us); });
  });
  sim.run();
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5_us, [&] {
    sim.schedule_at(1_us, [&] {
      fired = true;
      EXPECT_EQ(sim.now(), 5_us);
    });
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_us, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2_us, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1_us, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(Simulator, StatsCountExecutions) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(Time::microseconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.stats().events_scheduled, 5u);
  EXPECT_EQ(sim.stats().events_executed, 5u);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identically-seeded runs must produce identical event interleaving.
  const auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(Time::nanoseconds(100 * (i % 7)), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xdrs::sim
