// Protocol- and invariant-level tests over the whole framework, checked
// via the trace: the Figure 2 ordering guarantees, conservation laws, and
// a broad configuration grid that must never crash, deadlock or violate
// accounting identities.
#include <gtest/gtest.h>

#include <memory>

#include "core/framework.hpp"
#include "schedulers/policy_registry.hpp"
#include "topo/testbed.hpp"

namespace xdrs::core {
namespace {

using sim::Time;
using sim::TraceCategory;
using namespace xdrs::sim::literals;

FrameworkConfig traced_config() {
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 200_us;
  c.ocs_reconfig = 5_us;
  c.min_circuit_hold = 20_us;
  return c;
}

TEST(Protocol, GrantsNeverPrecedeConfigurationCompletion) {
  // Paper §3: the grant matrix reaches the switching logic first; grants to
  // the processing logic follow circuit establishment.  In the trace this
  // reads: between a reconfig-start and its reconfig-done there is no OCS
  // grant release.
  HybridSwitchFramework fw{traced_config()};
  fw.use_default_policies();
  fw.trace().enable();
  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.seed = 21;
  topo::attach_workload(fw, spec);
  (void)fw.run(5_ms);

  bool dark = false;
  std::uint64_t grants_checked = 0;
  for (const auto& e : fw.trace().events()) {
    if (e.category == TraceCategory::kReconfigStart) dark = true;
    if (e.category == TraceCategory::kReconfigDone) dark = false;
    if (e.category == TraceCategory::kGrant) {
      EXPECT_FALSE(dark) << "grant released during a dark period at " << e.at.to_string();
      ++grants_checked;
    }
  }
  EXPECT_GT(grants_checked, 0u);
}

TEST(Protocol, ScheduleAlwaysPrecedesItsReconfiguration) {
  HybridSwitchFramework fw{traced_config()};
  fw.use_default_policies();
  fw.trace().enable();
  topo::WorkloadSpec spec;
  spec.load = 0.4;
  spec.seed = 23;
  topo::attach_workload(fw, spec);
  (void)fw.run(3_ms);

  // Every reconfig-start must be preceded by at least one schedule-done.
  bool scheduled = false;
  for (const auto& e : fw.trace().events()) {
    if (e.category == TraceCategory::kScheduleDone) scheduled = true;
    if (e.category == TraceCategory::kReconfigStart) {
      EXPECT_TRUE(scheduled);
    }
  }
}

TEST(Protocol, EveryDeliveryHasADequeueOrBypass) {
  HybridSwitchFramework fw{traced_config()};
  fw.use_default_policies();
  fw.trace().enable();
  topo::WorkloadSpec spec;
  spec.load = 0.3;
  spec.seed = 25;
  topo::attach_workload(fw, spec);
  topo::attach_voip(fw, 2, 40_us, 200);
  (void)fw.run(3_ms);

  const auto deliveries = fw.trace().count(TraceCategory::kDeliver);
  const auto dequeues = fw.trace().count(TraceCategory::kDequeue);
  const auto arrivals = fw.trace().count(TraceCategory::kPacketArrival);
  EXPECT_GT(deliveries, 0u);
  // Deliveries come from dequeued (granted) packets or the bypass path;
  // both are bounded by arrivals.
  EXPECT_LE(deliveries, arrivals);
  EXPECT_LE(dequeues, arrivals);
}

TEST(Protocol, RequestsFireOncePerBusyPeriod) {
  // The request trace must match the VOQ non-empty transitions: a request
  // per busy period, not per packet.
  HybridSwitchFramework fw{traced_config()};
  fw.use_default_policies();
  fw.trace().enable();
  topo::WorkloadSpec spec;
  spec.load = 0.5;
  spec.seed = 27;
  topo::attach_workload(fw, spec);
  (void)fw.run(2_ms);

  const auto requests = fw.trace().count(TraceCategory::kRequest);
  const auto enqueues = fw.trace().count(TraceCategory::kEnqueue);
  EXPECT_GT(requests, 0u);
  EXPECT_LT(requests, enqueues);  // strictly fewer requests than packets
}

// ------------------------------------------------------- configuration grid

struct GridCase {
  SchedulingDiscipline discipline;
  BufferPlacement placement;
  bool strict_priority;
  bool fallback;
  const char* matcher;  // slotted only
};

class ConfigGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ConfigGrid, AccountingIdentitiesHold) {
  const GridCase& g = GetParam();
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = g.discipline;
  c.placement = g.placement;
  c.eps_strict_priority = g.strict_priority;
  c.eps_fallback_on_miss = g.fallback;
  c.epoch = 100_us;
  c.slot_time = 12'500_ns;
  c.ocs_reconfig = 1_us;
  c.min_circuit_hold = 10_us;
  c.sync.max_skew = 1_us;
  c.sync.guard_band = 2_us;
  c.voq_limits.max_bytes_per_voq = 256 * 1024;

  c.seed = 3;  // feeds randomized matchers via the policy context
  HybridSwitchFramework fw{c};
  if (g.discipline == SchedulingDiscipline::kSlotted) {
    fw.set_policies(PolicyStack{}.with_matcher(g.matcher));
  } else {
    fw.use_default_policies();  // fills the circuit scheduler
  }

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 50_us;
  spec.mean_off = 100_us;
  spec.seed = 31;
  topo::attach_workload(fw, spec);
  topo::attach_voip(fw, 2, 40_us, 200);

  const RunReport r = fw.run(3_ms, 500_us);

  // Identities that must hold for every configuration:
  EXPECT_LE(r.delivered_bytes, r.offered_bytes);
  EXPECT_LE(r.delivered_packets, r.offered_packets);
  EXPECT_EQ(r.class_bytes[0] + r.class_bytes[1] + r.class_bytes[2], r.delivered_bytes);
  EXPECT_GE(r.serviced_bytes, r.delivered_bytes);
  EXPECT_GE(r.ocs_duty_cycle, 0.0);
  EXPECT_LE(r.ocs_duty_cycle, 1.0);
  EXPECT_GE(r.peak_switch_buffer_bytes, r.peak_host_buffer_bytes);
  // With ON/OFF traffic something must always get through.
  EXPECT_GT(r.delivered_packets, 0u) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigGrid,
    ::testing::Values(
        GridCase{SchedulingDiscipline::kHybridEpoch, BufferPlacement::kToRSwitch, false, false,
                 ""},
        GridCase{SchedulingDiscipline::kHybridEpoch, BufferPlacement::kToRSwitch, true, false,
                 ""},
        GridCase{SchedulingDiscipline::kHybridEpoch, BufferPlacement::kHost, false, false, ""},
        GridCase{SchedulingDiscipline::kHybridEpoch, BufferPlacement::kHost, false, true, ""},
        GridCase{SchedulingDiscipline::kHybridEpoch, BufferPlacement::kHost, true, true, ""},
        GridCase{SchedulingDiscipline::kSlotted, BufferPlacement::kToRSwitch, false, false,
                 "islip:2"},
        GridCase{SchedulingDiscipline::kSlotted, BufferPlacement::kToRSwitch, true, false,
                 "wavefront"},
        GridCase{SchedulingDiscipline::kSlotted, BufferPlacement::kToRSwitch, false, false,
                 "serena"},
        GridCase{SchedulingDiscipline::kSlotted, BufferPlacement::kHost, false, true,
                 "islip:2"}),
    [](const ::testing::TestParamInfo<GridCase>& param_info) {
      const GridCase& g = param_info.param;
      std::string name = g.discipline == SchedulingDiscipline::kSlotted ? "slotted" : "hybrid";
      name += g.placement == BufferPlacement::kHost ? "_host" : "_tor";
      if (g.strict_priority) name += "_prio";
      if (g.fallback) name += "_fb";
      // Appended separately: the `"_" + std::to_string(...)` temporary trips
      // a GCC 12 -Wrestrict false positive at -O3 under -Werror.
      name += '_';
      name += std::to_string(param_info.index);
      return name;
    });

// Failure injection sweep: flaky optics degrade but never wedge the system.
class FailureGrid : public ::testing::TestWithParam<double> {};

TEST_P(FailureGrid, FlakyOpticsDegradeGracefully) {
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  c.ocs_failure_prob = GetParam();
  HybridSwitchFramework fw{c};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.3;
  spec.seed = 41;
  topo::attach_workload(fw, spec);
  const RunReport r = fw.run(3_ms, 500_us);
  EXPECT_GT(r.delivered_packets, 0u);
  EXPECT_GT(r.delivery_ratio(), 0.5) << "p=" << GetParam() << "\n" << r.summary();
}

INSTANTIATE_TEST_SUITE_P(FailureRates, FailureGrid, ::testing::Values(0.0, 0.2, 0.5, 0.8));

}  // namespace
}  // namespace xdrs::core
