// Tests for the processing logic: ingest/classify/enqueue, request
// generation, grant execution on both fabrics, bypass and skew behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/processing_logic.hpp"

namespace xdrs::core {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

struct Rig {
  explicit Rig(FrameworkConfig c) : cfg{c} {
    ocs = std::make_unique<switching::OpticalCircuitSwitch>(
        sim, switching::OcsConfig{cfg.ports, cfg.link_rate, cfg.ocs_reconfig,
                                  cfg.ocs_fabric_latency});
    eps = std::make_unique<switching::ElectricalPacketSwitch>(
        sim, switching::EpsConfig{cfg.ports, cfg.eps_rate, cfg.eps_latency,
                                  cfg.eps_buffer_bytes});
    sync = std::make_unique<control::SyncModel>(cfg.ports, cfg.sync);
    proc = std::make_unique<ProcessingLogic>(sim, cfg, classifier, *ocs, *eps, *sync, trace);
    ocs->set_deliver_callback(
        [this](const net::Packet& p, net::PortId) { ocs_delivered.push_back(p); });
    eps->set_deliver_callback(
        [this](const net::Packet& p, net::PortId) { eps_delivered.push_back(p); });
  }

  FrameworkConfig cfg;
  sim::Simulator sim;
  sim::TraceRecorder trace;
  net::Classifier classifier;
  std::unique_ptr<switching::OpticalCircuitSwitch> ocs;
  std::unique_ptr<switching::ElectricalPacketSwitch> eps;
  std::unique_ptr<control::SyncModel> sync;
  std::unique_ptr<ProcessingLogic> proc;
  std::vector<net::Packet> ocs_delivered;
  std::vector<net::Packet> eps_delivered;
};

FrameworkConfig tor_config() {
  FrameworkConfig c;
  c.ports = 4;
  c.placement = BufferPlacement::kToRSwitch;
  c.link_latency = 500_ns;
  c.ocs_reconfig = 1_us;
  return c;
}

net::Packet pkt(net::PortId src, net::PortId dst, std::int64_t bytes,
                net::TrafficClass tc = net::TrafficClass::kBestEffort) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  p.tclass = tc;
  p.tuple.src_addr = src;
  p.tuple.dst_addr = dst;
  return p;
}

control::GrantSet ocs_grant(net::PortId src, net::PortId dst, std::int64_t bytes, Time from,
                            Time until) {
  control::GrantSet gs;
  control::Grant g;
  g.src = src;
  g.dst = dst;
  g.bytes = bytes;
  g.via = control::FabricPath::kOcs;
  g.valid_from = from;
  g.valid_until = until;
  gs.grants.push_back(g);
  return gs;
}

control::GrantSet eps_grant(net::PortId src, net::PortId dst, std::int64_t bytes, Time until) {
  control::GrantSet gs;
  control::Grant g;
  g.src = src;
  g.dst = dst;
  g.bytes = bytes;
  g.via = control::FabricPath::kEps;
  g.valid_until = until;
  gs.grants.push_back(g);
  return gs;
}

TEST(Processing, IngestEnqueuesAfterLinkLatencyInTorMode) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 1500));
  EXPECT_EQ(rig.proc->voqs().total_packets(), 0);  // still on the wire
  rig.sim.run_until(600_ns);
  EXPECT_EQ(rig.proc->voqs().total_packets(), 1);
  EXPECT_EQ(rig.proc->voqs().bytes(0, 1), 1500);
}

TEST(Processing, HostModeEnqueuesImmediately) {
  FrameworkConfig c = tor_config();
  c.placement = BufferPlacement::kHost;
  Rig rig{c};
  rig.proc->ingest(pkt(0, 1, 1500));
  EXPECT_EQ(rig.proc->voqs().total_packets(), 1);
}

TEST(Processing, EmitsRequestOnFirstEnqueue) {
  Rig rig{tor_config()};
  std::vector<control::SchedulingRequest> reqs;
  rig.proc->set_request_callback(
      [&](const control::SchedulingRequest& r) { reqs.push_back(r); });
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.proc->ingest(pkt(0, 1, 1500));  // same VOQ: no second request
  rig.sim.run();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].src, 0u);
  EXPECT_EQ(reqs[0].dst, 1u);
  EXPECT_EQ(reqs[0].backlog_bytes, 1500);
}

TEST(Processing, ArrivalCallbackFeedsEstimator) {
  Rig rig{tor_config()};
  std::int64_t seen = 0;
  rig.proc->set_arrival_callback(
      [&](net::PortId, net::PortId, std::int64_t b, Time) { seen += b; });
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.proc->ingest(pkt(0, 2, 500));
  rig.sim.run();
  EXPECT_EQ(seen, 2000);
}

TEST(Processing, ClassifierRuleRedirectsVoq) {
  Rig rig{tor_config()};
  net::Rule r;
  r.dst_addr_value = 1;
  r.dst_addr_mask = 0xffffffff;
  r.verdict = net::Verdict{3, net::TrafficClass::kBestEffort};  // rewrite 1 -> 3
  rig.classifier.add_rule(r);
  rig.proc->ingest(pkt(0, 1, 1000));
  rig.sim.run();
  EXPECT_EQ(rig.proc->voqs().bytes(0, 3), 1000);
  EXPECT_EQ(rig.proc->voqs().bytes(0, 1), 0);
}

TEST(Processing, LatencySensitiveBypassesVoqInTorMode) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 200, net::TrafficClass::kLatencySensitive));
  rig.sim.run();
  EXPECT_EQ(rig.proc->voqs().total_packets(), 0);
  ASSERT_EQ(rig.eps_delivered.size(), 1u);
  EXPECT_EQ(rig.proc->stats().eps_bypass_packets, 1u);
}

TEST(Processing, LatencySensitiveWaitsForGrantInHostMode) {
  FrameworkConfig c = tor_config();
  c.placement = BufferPlacement::kHost;
  Rig rig{c};
  rig.proc->ingest(pkt(0, 1, 200, net::TrafficClass::kLatencySensitive));
  rig.sim.run();
  EXPECT_EQ(rig.proc->voqs().total_packets(), 1);  // grant-gated, not bypassed
  EXPECT_TRUE(rig.eps_delivered.empty());
}

TEST(Processing, OcsGrantDeliversOverCircuit) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.ocs->reconfigure(schedulers::Matching::rotation(4, 1));
  rig.sim.run_until(3_us);  // circuit up

  rig.proc->handle_grants(ocs_grant(0, 1, 10'000, rig.sim.now(), rig.sim.now() + 100_us));
  rig.sim.run();
  ASSERT_EQ(rig.ocs_delivered.size(), 1u);
  EXPECT_EQ(rig.ocs_delivered[0].dst, 1u);
  EXPECT_EQ(rig.proc->voqs().total_packets(), 0);
  EXPECT_EQ(rig.proc->stats().granted_ocs_packets, 1u);
}

TEST(Processing, OcsGrantStopsAtByteBudget) {
  Rig rig{tor_config()};
  for (int i = 0; i < 5; ++i) rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.ocs->reconfigure(schedulers::Matching::rotation(4, 1));
  rig.sim.run_until(3_us);

  // Budget covers only two packets.
  rig.proc->handle_grants(ocs_grant(0, 1, 3000, rig.sim.now(), rig.sim.now() + 1_ms));
  rig.sim.run();
  EXPECT_EQ(rig.ocs_delivered.size(), 2u);
  EXPECT_EQ(rig.proc->voqs().packets(0, 1), 3u);
}

TEST(Processing, OcsGrantStopsAtWindowEnd) {
  Rig rig{tor_config()};
  for (int i = 0; i < 100; ++i) rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.ocs->reconfigure(schedulers::Matching::rotation(4, 1));
  rig.sim.run_until(3_us);

  // Window fits ~4 packets at 1216 ns each.
  const Time start = rig.sim.now();
  rig.proc->handle_grants(ocs_grant(0, 1, 1'000'000, start, start + 5'000_ns));
  rig.sim.run();
  EXPECT_GE(rig.ocs_delivered.size(), 3u);
  EXPECT_LE(rig.ocs_delivered.size(), 5u);
}

TEST(Processing, GrantBeforeWindowWaits) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.ocs->reconfigure(schedulers::Matching::rotation(4, 1));
  rig.sim.run_until(3_us);

  const Time open = rig.sim.now() + 50_us;
  rig.proc->handle_grants(ocs_grant(0, 1, 10'000, open, open + 100_us));
  rig.sim.run_until(open - 1_us);
  EXPECT_TRUE(rig.ocs_delivered.empty());  // window not open yet
  rig.sim.run();
  EXPECT_EQ(rig.ocs_delivered.size(), 1u);
}

TEST(Processing, LaunchIntoDarknessCountsSyncLoss) {
  FrameworkConfig c = tor_config();
  c.eps_fallback_on_miss = false;
  Rig rig{c};
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  // No circuit configured at all; grant anyway (mimics overlap ablation).
  rig.proc->handle_grants(ocs_grant(0, 1, 10'000, rig.sim.now(), rig.sim.now() + 10_us));
  rig.sim.run();
  EXPECT_TRUE(rig.ocs_delivered.empty());
  EXPECT_EQ(rig.proc->stats().sync_losses, 1u);
}

TEST(Processing, MissedWindowFallsBackToEpsWhenEnabled) {
  FrameworkConfig c = tor_config();
  c.eps_fallback_on_miss = true;
  Rig rig{c};
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.proc->handle_grants(ocs_grant(0, 1, 10'000, rig.sim.now(), rig.sim.now() + 10_us));
  rig.sim.run();
  EXPECT_EQ(rig.proc->stats().sync_losses, 1u);
  ASSERT_EQ(rig.eps_delivered.size(), 1u);  // diverted, not lost
}

TEST(Processing, EpsGrantDrainsVoq) {
  Rig rig{tor_config()};
  for (int i = 0; i < 3; ++i) rig.proc->ingest(pkt(0, 2, 1000));
  rig.sim.run_until(1_us);
  rig.proc->handle_grants(eps_grant(0, 2, 10'000, rig.sim.now() + 1_ms));
  rig.sim.run();
  EXPECT_EQ(rig.eps_delivered.size(), 3u);
  EXPECT_EQ(rig.proc->stats().granted_eps_packets, 3u);
}

TEST(Processing, EpsGrantsQueuePerInput) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 1000));
  rig.proc->ingest(pkt(0, 2, 1000));
  rig.sim.run_until(1_us);
  rig.proc->handle_grants(eps_grant(0, 1, 5'000, rig.sim.now() + 1_ms));
  rig.proc->handle_grants(eps_grant(0, 2, 5'000, rig.sim.now() + 1_ms));
  rig.sim.run();
  EXPECT_EQ(rig.eps_delivered.size(), 2u);
}

TEST(Processing, RevokeAllGrantsStopsService) {
  Rig rig{tor_config()};
  for (int i = 0; i < 10; ++i) rig.proc->ingest(pkt(0, 1, 1500));
  rig.sim.run_until(1_us);
  rig.proc->handle_grants(eps_grant(0, 1, 100'000, rig.sim.now() + 1_ms));
  rig.proc->revoke_all_grants();
  rig.sim.run();
  // At most the one packet already being serialised escapes.
  EXPECT_LE(rig.eps_delivered.size(), 1u);
}

TEST(Processing, HostSkewShiftsLaunchTime) {
  FrameworkConfig c = tor_config();
  c.placement = BufferPlacement::kHost;
  c.sync.max_skew = 5_us;
  c.sync.seed = 12345;
  Rig rig{c};

  rig.proc->ingest(pkt(0, 1, 1500));
  rig.ocs->reconfigure(schedulers::Matching::rotation(4, 1));
  rig.sim.run_until(2_us);

  const Time open = 10_us;
  rig.proc->handle_grants(ocs_grant(0, 1, 10'000, open, open + 500_us));
  rig.sim.run();
  const Time offset = rig.sync->offset_of(0);
  if (offset > Time::zero()) {
    // Host acts late; the packet still goes through (window is long).
    ASSERT_EQ(rig.ocs_delivered.size(), 1u);
  }
  // Whatever the sign of the offset, nothing is lost with a long window.
  EXPECT_EQ(rig.proc->stats().sync_losses + rig.ocs_delivered.size(), 1u);
}

TEST(Processing, StatsCountIngest) {
  Rig rig{tor_config()};
  rig.proc->ingest(pkt(0, 1, 1500));
  rig.proc->ingest(pkt(1, 2, 500));
  EXPECT_EQ(rig.proc->stats().ingested_packets, 2u);
  EXPECT_EQ(rig.proc->stats().ingested_bytes, 2000);
}

}  // namespace
}  // namespace xdrs::core
