// Parameterized property sweeps over the full framework: delivery and
// conservation invariants must hold across schedulers, loads, placements
// and traffic patterns.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/framework.hpp"
#include "topo/testbed.hpp"

namespace xdrs::core {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

// ---------------------------------------------------------- slotted sweep

struct SlottedCase {
  std::string matcher;
  double load;
};

class SlottedSweep : public ::testing::TestWithParam<SlottedCase> {};

TEST_P(SlottedSweep, DeliversAndConserves) {
  const auto& param = GetParam();
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kSlotted;
  c.slot_time = 5_us;
  c.ocs_reconfig = 50_ns;
  c.seed = 5;  // feeds randomized matchers (pim) via the policy context
  HybridSwitchFramework fw{c};
  fw.set_policies(PolicyStack{}.with_matcher(param.matcher));

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  spec.load = param.load;
  spec.seed = 17;
  topo::attach_workload(fw, spec);

  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_LE(r.delivered_bytes, r.offered_bytes);
  EXPECT_GT(r.offered_packets, 0u);
  // Low-to-moderate uniform load: every demand-aware matcher must deliver
  // the bulk of it (rotor is demand-oblivious but still work-conserving
  // across N-1 rotations at these loads).
  EXPECT_GT(r.delivery_ratio(), 0.80) << param.matcher << " @ " << param.load << "\n"
                                      << r.summary();
  EXPECT_EQ(r.voq_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MatcherLoadGrid, SlottedSweep,
    ::testing::Values(SlottedCase{"islip:1", 0.3}, SlottedCase{"islip:4", 0.5},
                      SlottedCase{"pim:4", 0.4}, SlottedCase{"rrm:1", 0.2},
                      SlottedCase{"ilqf", 0.4}, SlottedCase{"maxsize", 0.4},
                      SlottedCase{"maxweight", 0.3}, SlottedCase{"rotor", 0.3}),
    [](const ::testing::TestParamInfo<SlottedCase>& param_info) {
      std::string name = param_info.param.matcher + "_l" +
                         std::to_string(static_cast<int>(param_info.param.load * 100));
      for (char& ch : name) {
        if (ch == ':') ch = 'i';
      }
      return name;
    });

// ----------------------------------------------------------- hybrid sweep

struct HybridCase {
  const char* scheduler;  // "solstice", "cthrough", "tms"
  topo::WorkloadSpec::Kind workload;
  double load_or_skew;
};

class HybridSweep : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridSweep, DeliversAndConserves) {
  const auto& param = GetParam();
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  c.min_circuit_hold = 10_us;
  HybridSwitchFramework fw{c};
  fw.set_policies(PolicyStack{}.with_circuit(param.scheduler));

  topo::WorkloadSpec spec;
  spec.kind = param.workload;
  spec.load = param.load_or_skew;
  if (param.workload == topo::WorkloadSpec::Kind::kPoissonHotspot ||
      param.workload == topo::WorkloadSpec::Kind::kPoissonZipf) {
    spec.load = 0.3;
    spec.skew = param.load_or_skew;
  }
  spec.seed = 23;
  topo::attach_workload(fw, spec);

  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_LE(r.delivered_bytes, r.offered_bytes);
  EXPECT_GT(r.offered_packets, 0u);
  EXPECT_GT(r.delivery_ratio(), 0.70)
      << param.scheduler << "/" << spec.name() << "\n"
      << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerWorkloadGrid, HybridSweep,
    ::testing::Values(
        HybridCase{"solstice", topo::WorkloadSpec::Kind::kPoissonUniform, 0.4},
        HybridCase{"solstice", topo::WorkloadSpec::Kind::kPermutation, 0.5},
        HybridCase{"solstice", topo::WorkloadSpec::Kind::kPoissonZipf, 1.2},
        HybridCase{"cthrough", topo::WorkloadSpec::Kind::kPoissonUniform, 0.3},
        HybridCase{"cthrough", topo::WorkloadSpec::Kind::kPermutation, 0.4},
        HybridCase{"tms", topo::WorkloadSpec::Kind::kPoissonUniform, 0.3},
        HybridCase{"tms", topo::WorkloadSpec::Kind::kPoissonHotspot, 0.4}),
    [](const ::testing::TestParamInfo<HybridCase>& param_info) {
      return std::string{param_info.param.scheduler} + "_w" +
             std::to_string(static_cast<int>(param_info.param.workload)) + "_" +
             std::to_string(param_info.index);
    });

// ------------------------------------------------------- placement sweep

class PlacementSweep : public ::testing::TestWithParam<BufferPlacement> {};

TEST_P(PlacementSweep, BothPlacementsDeliverUnderModestLoad) {
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 200_us;
  c.ocs_reconfig = 1_us;
  c.min_circuit_hold = 20_us;
  c.placement = GetParam();
  HybridSwitchFramework fw{c};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.3;
  topo::attach_workload(fw, spec);
  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_GT(r.delivery_ratio(), 0.60) << to_string(GetParam()) << "\n" << r.summary();
}

INSTANTIATE_TEST_SUITE_P(Placements, PlacementSweep,
                         ::testing::Values(BufferPlacement::kToRSwitch, BufferPlacement::kHost),
                         [](const ::testing::TestParamInfo<BufferPlacement>& param_info) {
                           return param_info.param == BufferPlacement::kToRSwitch ? "tor" : "host";
                         });

// ----------------------------------------------- reconfiguration overhead

class ReconfigSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ReconfigSweep, SlowerSwitchingNeverImprovesDelivery) {
  // Runs the same workload with increasing dark time; delivery must be
  // non-increasing (up to small noise) and duty cycle must fall.
  const auto run_with = [](Time dark) {
    FrameworkConfig c;
    c.ports = 4;
    c.discipline = SchedulingDiscipline::kHybridEpoch;
    c.epoch = 200_us;
    c.ocs_reconfig = dark;
    c.min_circuit_hold = 20_us;
    HybridSwitchFramework fw{c};
    fw.use_default_policies();
    topo::WorkloadSpec spec;
    spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
    spec.mean_on = 40_us;
    spec.mean_off = 120_us;
    spec.seed = 5;
    topo::attach_workload(fw, spec);
    return fw.run(4_ms, 1_ms);
  };
  const Time dark = Time::nanoseconds(GetParam());
  const RunReport fast = run_with(10_ns);
  const RunReport slow = run_with(dark);
  EXPECT_GE(fast.delivery_ratio() + 0.05, slow.delivery_ratio())
      << "dark=" << dark.to_string();
}

INSTANTIATE_TEST_SUITE_P(DarkTimes, ReconfigSweep,
                         ::testing::Values(1'000, 10'000, 100'000));  // 1 us .. 100 us

}  // namespace
}  // namespace xdrs::core
