// Tests for the empirical flow-size subsystem: strict CDF parsing with
// line-numbered errors, inverse-transform edge cases (p = 0/1, plateaus of
// duplicate probabilities, single-point CDFs), the analytic-vs-sampled
// mean contract for the bundled websearch/datamining files, and the cache
// identity contract — content digest, not path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/cache.hpp"
#include "exp/scenario.hpp"
#include "sim/random.hpp"
#include "traffic/empirical_cdf.hpp"

namespace xdrs::traffic {
namespace {

using namespace xdrs::sim::literals;

/// ctest runs from the build directory; the bundled CDFs live relative to
/// the repository root.  Probe the obvious candidates.
std::string bundled(const std::string& rel) {
  for (const char* prefix : {"", "../", "../../"}) {
    const std::string path = prefix + rel;
    if (std::filesystem::exists(path)) return path;
  }
  return rel;
}

// ---- parsing ---------------------------------------------------------------

TEST(EmpiricalCdfParse, AcceptsHeaderCommentsAndCrlf) {
  const EmpiricalCdf cdf = EmpiricalCdf::parse(
      "# websearch-ish\n"
      "bytes,cdf\n"
      "100,0.25\r\n"
      "\n"
      "200,0.5\n"
      "300,1.0\n");
  ASSERT_EQ(cdf.points().size(), 3u);
  EXPECT_EQ(cdf.min_bytes(), 100);
  EXPECT_EQ(cdf.max_bytes(), 300);
  // Atom 0.25 @ 100, mass 0.25 on (100,200] mid 150, mass 0.5 on (200,300]
  // mid 250: 25 + 37.5 + 125.
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 187.5);
}

TEST(EmpiricalCdfParse, RejectsEveryMalformedShape) {
  const auto reject = [](const char* csv, const char* why) {
    EXPECT_THROW((void)EmpiricalCdf::parse(csv), std::invalid_argument) << why;
  };
  reject("", "empty file");
  reject("# only comments\n", "no points");
  reject("100\n", "too few fields");
  reject("100,0.5,7\n", "too many fields");
  reject("10x,0.5\n100,1\n", "trailing garbage on bytes");
  reject("0,0.5\n100,1\n", "zero bytes");
  reject("-5,0.5\n100,1\n", "negative bytes");
  reject("100,0.5x\n200,1\n", "trailing garbage on cdf");
  reject("100,-0.1\n200,1\n", "cdf below 0");
  reject("100,1.5\n", "cdf above 1");
  reject("100,inf\n", "non-finite cdf");
  reject("100,0.5\n100,1\n", "bytes must strictly increase");
  reject("100,0.5\n50,1\n", "bytes decreased");
  reject("100,0.6\n200,0.5\n300,1\n", "cdf decreased");
  reject("100,0.5\n200,0.9\n", "final cdf short of 1");
  reject("100,1\n200,1\n300,0.9\n", "cdf decreased after reaching 1");
}

TEST(EmpiricalCdfParse, ErrorsNameTheOffendingLine) {
  try {
    (void)EmpiricalCdf::parse("bytes,cdf\n100,0.5\n50,1.0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos) << e.what();
  }
  try {
    (void)EmpiricalCdf::parse("100,0.5\n200,bad\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos) << e.what();
  }
}

TEST(EmpiricalCdfLoad, MissingFileThrowsNamingThePath) {
  try {
    (void)EmpiricalCdf::load("/no/such/cdf.csv");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("/no/such/cdf.csv"), std::string::npos);
  }
}

// ---- inversion -------------------------------------------------------------

TEST(EmpiricalCdfQuantile, EdgeProbabilitiesAndInterpolation) {
  const EmpiricalCdf cdf = EmpiricalCdf::parse("100,0.25\n200,0.5\n300,1.0\n");
  EXPECT_EQ(cdf.quantile(0.0), 100);    // p = 0: the minimum size
  EXPECT_EQ(cdf.quantile(0.25), 100);   // inside the atom
  EXPECT_EQ(cdf.quantile(0.375), 150);  // halfway up the first segment
  EXPECT_EQ(cdf.quantile(0.5), 200);
  EXPECT_EQ(cdf.quantile(0.75), 250);
  EXPECT_EQ(cdf.quantile(1.0), 300);  // p = 1: the maximum size
  // Out-of-range probabilities clamp instead of reading off the ends.
  EXPECT_EQ(cdf.quantile(-0.5), 100);
  EXPECT_EQ(cdf.quantile(2.0), 300);
}

TEST(EmpiricalCdfQuantile, SinglePointCdfIsAnAtom) {
  const EmpiricalCdf cdf = EmpiricalCdf::parse("1000,1\n");
  EXPECT_EQ(cdf.quantile(0.0), 1000);
  EXPECT_EQ(cdf.quantile(0.5), 1000);
  EXPECT_EQ(cdf.quantile(1.0), 1000);
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 1000.0);
}

TEST(EmpiricalCdfQuantile, DuplicateProbabilityPlateauCarriesNoMass) {
  // P(X <= 100) = P(X <= 200) = 0.5: nothing lands strictly inside
  // (100, 200], and the upper half interpolates (200, 400].
  const EmpiricalCdf cdf = EmpiricalCdf::parse("100,0.5\n200,0.5\n400,1.0\n");
  EXPECT_EQ(cdf.quantile(0.5), 100);
  EXPECT_EQ(cdf.quantile(0.75), 300);
  EXPECT_EQ(cdf.quantile(1.0), 400);
  sim::Rng rng{42};
  for (int i = 0; i < 10'000; ++i) {
    // Nothing strictly inside the (100, 200) plateau; a draw just past the
    // plateau's probability can round down to the 200 boundary itself.
    const std::int64_t s = cdf.quantile(rng.next_double());
    EXPECT_TRUE(s <= 100 || s >= 200) << s;
  }
  // Mean: atom 0.5 @ 100 + mass 0.5 mid 300.
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 200.0);
}

// ---- the bundled literature CDFs -------------------------------------------

class BundledCdfTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BundledCdfTest, SampledMeanMatchesTheAnalyticMeanWithinTwoPercent) {
  const std::string path = bundled(GetParam());
  ASSERT_TRUE(std::filesystem::exists(path)) << "bundled CDF not found: " << GetParam();
  EmpiricalSize size{load_cdf_cached(path)};
  ASSERT_GT(size.mean_bytes(), 0.0);

  sim::Rng rng{7};
  double sum = 0.0;
  constexpr int kSamples = 1'000'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(size.sample(rng));
  }
  const double sampled = sum / kSamples;
  EXPECT_NEAR(sampled / size.mean_bytes(), 1.0, 0.02)
      << "analytic " << size.mean_bytes() << " vs sampled " << sampled;
}

INSTANTIATE_TEST_SUITE_P(Bundled, BundledCdfTest,
                         ::testing::Values("examples/cdf_websearch.csv",
                                           "examples/cdf_datamining.csv"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return info.index == 0 ? "websearch" : "datamining";
                         });

TEST(BundledCdfs, HaveTheDocumentedShapes) {
  const EmpiricalCdf web = EmpiricalCdf::load(bundled(exp::kWebsearchCdfPath));
  const EmpiricalCdf mine = EmpiricalCdf::load(bundled(exp::kDataminingCdfPath));
  // Websearch: medium-heavy tail, flows up to 20 MB; datamining: the VL2
  // mix where half the flows are <= ~3 KB but the tail reaches 1 GB.
  EXPECT_EQ(web.max_bytes(), 20'000'000);
  EXPECT_EQ(mine.max_bytes(), 1'000'000'000);
  EXPECT_LE(mine.quantile(0.5), 4'000);
  EXPECT_GT(mine.mean_bytes(), 10.0 * web.mean_bytes());
}

// ---- content-digest cache identity -----------------------------------------

class EmpiricalWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("xdrs_cdf_" + std::to_string(::getpid()) + "_" +
              std::string{::testing::UnitTest::GetInstance()->current_test_info()->name()} +
              ".csv"))
                .string();
    std::ofstream out{path_, std::ios::trunc};
    out << "bytes,cdf\n1000,0.2\n20000,0.7\n500000,1.0\n";
  }
  void TearDown() override { std::filesystem::remove(path_); }

  [[nodiscard]] exp::ScenarioSpec spec(std::uint32_t ports, double load,
                                       std::uint64_t seed) const {
    exp::ScenarioSpec s =
        exp::make_scenario("websearch", ports, load, seed).with_window(1_ms, 200_us);
    s.workloads.front().cdf_path = path_;
    return s;
  }

  std::string path_;
};

TEST_F(EmpiricalWorkloadTest, CachedLoadServesOneParseAndTracksFileEdits) {
  const std::shared_ptr<const EmpiricalCdf> first = load_cdf_cached(path_);
  const std::shared_ptr<const EmpiricalCdf> again = load_cdf_cached(path_);
  EXPECT_EQ(first.get(), again.get());  // one parse, shared by every probe
  const std::string digest_before = cdf_digest_hex(path_);
  EXPECT_EQ(cdf_digest_hex(path_), digest_before);
  EXPECT_EQ(cdf_digest_hex("/no/such/cdf.csv"), "unreadable");

  {
    std::ofstream out{path_, std::ios::app};
    out << "# appended comment\n";
  }
  const std::shared_ptr<const EmpiricalCdf> edited = load_cdf_cached(path_);
  EXPECT_NE(first.get(), edited.get());
  EXPECT_NE(cdf_digest_hex(path_), digest_before);
}

TEST_F(EmpiricalWorkloadTest, ScenarioRunsDeterministicallyAndSeedSensitively) {
  const core::RunReport a = exp::run_scenario(spec(4, 0.5, 7));
  const core::RunReport b = exp::run_scenario(spec(4, 0.5, 7));
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_GT(a.offered_bytes, 0);

  const core::RunReport c = exp::run_scenario(spec(4, 0.5, 8));
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST_F(EmpiricalWorkloadTest, SpecHashTracksCdfContentNotPath) {
  const exp::ScenarioSpec s = spec(4, 0.5, 7);
  const std::uint64_t hash_before = exp::spec_hash(s);
  EXPECT_NE(s.identity_json().find("\"cdf_digest\""), std::string::npos);

  // Editing the file's bytes (even a comment) must change the identity;
  // the load axis and the other scenarios' CDFs are untouched.
  {
    std::ofstream out{path_, std::ios::app};
    out << "# re-measured\n";
  }
  EXPECT_NE(exp::spec_hash(s), hash_before);
}

}  // namespace
}  // namespace xdrs::traffic
