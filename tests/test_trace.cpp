// Tests for the trace recorder used by the transient/pipeline experiments.
#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace xdrs::sim {
namespace {

using namespace xdrs::sim::literals;

TEST(TraceRecorder, DisabledByDefault) {
  TraceRecorder t;
  EXPECT_FALSE(t.enabled());
  t.record(1_us, TraceCategory::kGrant, 1, 2);
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceRecorder, RecordsWhenEnabled) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kEnqueue, 3, 4);
  t.record(2_us, TraceCategory::kDequeue, 3, 4);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].category, TraceCategory::kEnqueue);
  EXPECT_EQ(t.events()[0].a, 3u);
  EXPECT_EQ(t.events()[1].at, 2_us);
}

TEST(TraceRecorder, FilterByCategory) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant, 0, 1);
  t.record(2_us, TraceCategory::kDrop, 0, 2);
  t.record(3_us, TraceCategory::kGrant, 0, 3);
  const auto grants = t.filter(TraceCategory::kGrant);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].b, 1u);
  EXPECT_EQ(grants[1].b, 3u);
  EXPECT_EQ(t.count(TraceCategory::kDrop), 1u);
  EXPECT_EQ(t.count(TraceCategory::kDeliver), 0u);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceRecorder, DisableStopsRecording) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant);
  t.disable();
  t.record(2_us, TraceCategory::kGrant);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(TraceRecorder, UnboundedByDefault) {
  TraceRecorder t;
  t.enable();
  for (int i = 0; i < 1000; ++i) t.record(Time::microseconds(i), TraceCategory::kGrant);
  EXPECT_EQ(t.events().size(), 1000u);
  EXPECT_EQ(t.offered(), 1000u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceRecorder, DropOldestKeepsTheNewestEvents) {
  TraceRecorder t;
  t.set_capacity(8, TraceOverflow::kDropOldest);
  t.enable();
  for (int i = 0; i < 20; ++i) t.record(Time::microseconds(i), TraceCategory::kGrant, i);
  EXPECT_LE(t.events().size(), 8u);
  EXPECT_EQ(t.offered(), 20u);
  EXPECT_EQ(t.dropped(), 20u - t.events().size());
  // Tail is contiguous and ends at the last offered event.
  EXPECT_EQ(t.events().back().a, 19u);
  for (std::size_t k = 1; k < t.events().size(); ++k) {
    EXPECT_EQ(t.events()[k].a, t.events()[k - 1].a + 1);
  }
}

TEST(TraceRecorder, DecimateSpansTheWholeRun) {
  TraceRecorder t;
  t.set_capacity(4, TraceOverflow::kDecimate);
  t.enable();
  for (int i = 0; i < 16; ++i) t.record(Time::microseconds(i), TraceCategory::kGrant, i);
  EXPECT_EQ(t.offered(), 16u);
  EXPECT_EQ(t.stride(), 4u);
  // Every 4th offered event survives — the subsample covers start AND end.
  ASSERT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.events()[0].a, 0u);
  EXPECT_EQ(t.events()[1].a, 4u);
  EXPECT_EQ(t.events()[2].a, 8u);
  EXPECT_EQ(t.events()[3].a, 12u);
  EXPECT_EQ(t.dropped(), 12u);
}

TEST(TraceRecorder, CapacityClampedToTwo) {
  TraceRecorder t;
  t.set_capacity(1, TraceOverflow::kDropOldest);
  EXPECT_EQ(t.capacity(), 2u);
  t.set_capacity(0);  // back to unbounded
  EXPECT_EQ(t.capacity(), 0u);
}

TEST(TraceRecorder, ClearResetsBoundingCounters) {
  TraceRecorder t;
  t.set_capacity(2, TraceOverflow::kDecimate);
  t.enable();
  for (int i = 0; i < 10; ++i) t.record(Time::microseconds(i), TraceCategory::kGrant);
  t.clear();
  EXPECT_EQ(t.offered(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.stride(), 1u);
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceCategoryNames, AllDistinctAndNonNull) {
  const TraceCategory cats[] = {
      TraceCategory::kPacketArrival, TraceCategory::kEnqueue,       TraceCategory::kRequest,
      TraceCategory::kDemandUpdate,  TraceCategory::kScheduleStart, TraceCategory::kScheduleDone,
      TraceCategory::kReconfigStart, TraceCategory::kReconfigDone,  TraceCategory::kGrant,
      TraceCategory::kDequeue,       TraceCategory::kDeliver,       TraceCategory::kDrop,
  };
  for (std::size_t i = 0; i < std::size(cats); ++i) {
    ASSERT_NE(to_string(cats[i]), nullptr);
    for (std::size_t j = i + 1; j < std::size(cats); ++j) {
      EXPECT_STRNE(to_string(cats[i]), to_string(cats[j]));
    }
  }
}

}  // namespace
}  // namespace xdrs::sim
