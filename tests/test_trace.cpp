// Tests for the trace recorder used by the transient/pipeline experiments.
#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace xdrs::sim {
namespace {

using namespace xdrs::sim::literals;

TEST(TraceRecorder, DisabledByDefault) {
  TraceRecorder t;
  EXPECT_FALSE(t.enabled());
  t.record(1_us, TraceCategory::kGrant, 1, 2);
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceRecorder, RecordsWhenEnabled) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kEnqueue, 3, 4);
  t.record(2_us, TraceCategory::kDequeue, 3, 4);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].category, TraceCategory::kEnqueue);
  EXPECT_EQ(t.events()[0].a, 3u);
  EXPECT_EQ(t.events()[1].at, 2_us);
}

TEST(TraceRecorder, FilterByCategory) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant, 0, 1);
  t.record(2_us, TraceCategory::kDrop, 0, 2);
  t.record(3_us, TraceCategory::kGrant, 0, 3);
  const auto grants = t.filter(TraceCategory::kGrant);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].b, 1u);
  EXPECT_EQ(grants[1].b, 3u);
  EXPECT_EQ(t.count(TraceCategory::kDrop), 1u);
  EXPECT_EQ(t.count(TraceCategory::kDeliver), 0u);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceRecorder, DisableStopsRecording) {
  TraceRecorder t;
  t.enable();
  t.record(1_us, TraceCategory::kGrant);
  t.disable();
  t.record(2_us, TraceCategory::kGrant);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(TraceCategoryNames, AllDistinctAndNonNull) {
  const TraceCategory cats[] = {
      TraceCategory::kPacketArrival, TraceCategory::kEnqueue,       TraceCategory::kRequest,
      TraceCategory::kDemandUpdate,  TraceCategory::kScheduleStart, TraceCategory::kScheduleDone,
      TraceCategory::kReconfigStart, TraceCategory::kReconfigDone,  TraceCategory::kGrant,
      TraceCategory::kDequeue,       TraceCategory::kDeliver,       TraceCategory::kDrop,
  };
  for (std::size_t i = 0; i < std::size(cats); ++i) {
    ASSERT_NE(to_string(cats[i]), nullptr);
    for (std::size_t j = i + 1; j < std::size(cats); ++j) {
      EXPECT_STRNE(to_string(cats[i]), to_string(cats[j]));
    }
  }
}

}  // namespace
}  // namespace xdrs::sim
