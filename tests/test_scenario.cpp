// Tests for the declarative scenario layer: registry round-trips, fluent
// grid mutators, materialization of the policy stack, and error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "exp/scenario.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

TEST(ScenarioRegistry, KnowsTheBuiltInScenarios) {
  const auto names = known_scenarios();
  for (const char* expected : {"uniform", "hotspot", "zipf", "permutation", "onoff", "flows",
                               "shuffle", "incast", "voip"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing scenario " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistry, UnknownNameThrowsWithKnownList) {
  try {
    (void)make_scenario("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("uniform"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RegisterExtendAndDuplicateRejected) {
  register_scenario("test-custom", [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = make_scenario("uniform", ports, load, seed);
    s.scenario = "test-custom";
    return s;
  });
  const ScenarioSpec s = make_scenario("test-custom", 4, 0.25, 3);
  EXPECT_EQ(s.scenario, "test-custom");
  EXPECT_EQ(s.config.ports, 4u);
  EXPECT_DOUBLE_EQ(s.load(), 0.25);
  EXPECT_THROW(register_scenario("test-custom", [](std::uint32_t, double, std::uint64_t) {
                 return ScenarioSpec{};
               }),
               std::invalid_argument);
}

TEST(ScenarioSpec, RoundTripsThroughRegistryParameters) {
  for (const auto& name : known_scenarios()) {
    const ScenarioSpec s = make_scenario(name, 8, 0.4, 11);
    EXPECT_EQ(s.scenario, name);
    EXPECT_EQ(s.config.ports, 8u);
    EXPECT_EQ(s.config.seed, 11u);
    EXPECT_FALSE(s.workloads.empty()) << name;
  }
}

TEST(ScenarioSpec, FluentMutatorsComposeAndKeyReflectsThem) {
  ScenarioSpec s = make_scenario("uniform", 8, 0.5, 7)
                       .with_ports(16)
                       .with_load(0.75)
                       .with_matcher("islip:4")
                       .with_seed(21)
                       .with_window(1_ms, 100_us);
  EXPECT_EQ(s.config.ports, 16u);
  EXPECT_DOUBLE_EQ(s.load(), 0.75);
  EXPECT_EQ(s.policies.matcher, "islip:4");
  EXPECT_EQ(s.config.seed, 21u);
  EXPECT_EQ(s.duration, 1_ms);
  EXPECT_EQ(s.warmup, 100_us);
  EXPECT_EQ(s.key(), "uniform/islip:4/p16/l0.75/s21");
}

TEST(ScenarioSpec, LoadAndPortsMutatorsRederiveIndirectWorkloadFields) {
  // ON/OFF bursts encode load as a duty cycle: mean_off must track it.
  ScenarioSpec onoff = make_scenario("onoff", 8, 0.5, 7);
  const sim::Time off_at_half = onoff.workloads.front().mean_off;
  onoff.with_load(0.9);
  EXPECT_LT(onoff.workloads.front().mean_off, off_at_half);
  EXPECT_DOUBLE_EQ(onoff.load(), 0.9);

  // Incast encodes load x ports as the per-worker response size.
  ScenarioSpec incast = make_scenario("incast", 8, 0.5, 7);
  const std::int64_t resp = incast.workloads.front().response_bytes;
  incast.with_load(0.9);
  EXPECT_GT(incast.workloads.front().response_bytes, resp);
  incast.with_ports(4);  // fewer workers -> bigger per-worker answers
  EXPECT_GT(incast.workloads.front().response_bytes,
            make_scenario("incast", 8, 0.9, 7).workloads.front().response_bytes);
  EXPECT_EQ(make_scenario("incast", 4, 0.9, 7).workloads.front().response_bytes,
            incast.workloads.front().response_bytes);
}

TEST(ScenarioSpec, MaterializeBuildsTheConfiguredFramework) {
  const ScenarioSpec s = make_scenario("uniform", 4, 0.5, 7);
  const auto fw = materialize(s);
  ASSERT_NE(fw, nullptr);
  EXPECT_EQ(fw->config().ports, 4u);
  EXPECT_EQ(fw->config().discipline, core::SchedulingDiscipline::kSlotted);
}

TEST(ScenarioSpec, MaterializeRejectsUnknownPolicies) {
  ScenarioSpec s = make_scenario("uniform", 4, 0.5, 7);
  s.policies.estimator = "psychic";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);

  s = make_scenario("uniform", 4, 0.5, 7);
  s.policies.timing = "quantum";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);

  s = make_scenario("onoff", 4, 0.5, 7);
  s.policies.circuit = "wormhole";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);
}

TEST(ScenarioSpec, EveryBuiltInScenarioActuallyRuns) {
  for (const auto& name : known_scenarios()) {
    if (name == "test-custom") continue;  // registered by an earlier test
    // Flow-level scenarios start slowly (flow interarrivals are milliseconds
    // at low load), so give every scenario a window long enough to observe.
    ScenarioSpec s = make_scenario(name, 4, 0.5, 5).with_window(5_ms, 500_us);
    const core::RunReport r = run_scenario(s);
    EXPECT_GT(r.offered_packets, 0u) << name;
    EXPECT_GT(r.delivered_packets, 0u) << name;
  }
}

TEST(ScenarioSpec, SameSpecIsReproducible) {
  const ScenarioSpec s = make_scenario("shuffle", 4, 0.4, 13).with_window(500_us, 100_us);
  const core::RunReport a = run_scenario(s);
  const core::RunReport b = run_scenario(s);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace xdrs::exp
