// Tests for the declarative scenario layer: registry round-trips, fluent
// grid mutators, materialization of the policy stack, and error paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exp/scenario.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

TEST(ScenarioRegistry, KnowsTheBuiltInScenarios) {
  const auto names = known_scenarios();
  for (const char* expected : {"uniform", "hotspot", "zipf", "permutation", "onoff", "flows",
                               "shuffle", "incast", "voip", "trace", "incast+background",
                               "shuffle+voip", "onoff+mice"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing scenario " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistry, UnknownNameThrowsWithKnownList) {
  try {
    (void)make_scenario("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("uniform"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RegisterExtendAndDuplicateRejected) {
  register_scenario("test-custom", [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = make_scenario("uniform", ports, load, seed);
    s.scenario = "test-custom";
    return s;
  });
  const ScenarioSpec s = make_scenario("test-custom", 4, 0.25, 3);
  EXPECT_EQ(s.scenario, "test-custom");
  EXPECT_EQ(s.config.ports, 4u);
  EXPECT_DOUBLE_EQ(s.load(), 0.25);
  EXPECT_THROW(register_scenario("test-custom", [](std::uint32_t, double, std::uint64_t) {
                 return ScenarioSpec{};
               }),
               std::invalid_argument);
}

TEST(ScenarioSpec, RoundTripsThroughRegistryParameters) {
  for (const auto& name : known_scenarios()) {
    const ScenarioSpec s = make_scenario(name, 8, 0.4, 11);
    EXPECT_EQ(s.scenario, name);
    EXPECT_EQ(s.config.ports, 8u);
    EXPECT_EQ(s.config.seed, 11u);
    EXPECT_FALSE(s.workloads.empty()) << name;
  }
}

TEST(ScenarioSpec, FluentMutatorsComposeAndKeyReflectsThem) {
  ScenarioSpec s = make_scenario("uniform", 8, 0.5, 7)
                       .with_ports(16)
                       .with_load(0.75)
                       .with_matcher("islip:4")
                       .with_seed(21)
                       .with_window(1_ms, 100_us);
  EXPECT_EQ(s.config.ports, 16u);
  EXPECT_DOUBLE_EQ(s.load(), 0.75);
  EXPECT_EQ(s.policies.matcher, "islip:4");
  EXPECT_EQ(s.config.seed, 21u);
  EXPECT_EQ(s.duration, 1_ms);
  EXPECT_EQ(s.warmup, 100_us);
  EXPECT_EQ(s.key(), "uniform/slotted/islip:4/solstice/instantaneous/hardware/p16/l0.75/s21");
}

TEST(ScenarioSpec, LoadAndPortsMutatorsRederiveIndirectWorkloadFields) {
  // ON/OFF bursts encode load as a duty cycle: mean_off must track it.
  ScenarioSpec onoff = make_scenario("onoff", 8, 0.5, 7);
  const sim::Time off_at_half = onoff.workloads.front().mean_off;
  onoff.with_load(0.9);
  EXPECT_LT(onoff.workloads.front().mean_off, off_at_half);
  EXPECT_DOUBLE_EQ(onoff.load(), 0.9);

  // Incast encodes load x ports as the per-worker response size.
  ScenarioSpec incast = make_scenario("incast", 8, 0.5, 7);
  const std::int64_t resp = incast.workloads.front().response_bytes;
  incast.with_load(0.9);
  EXPECT_GT(incast.workloads.front().response_bytes, resp);
  incast.with_ports(4);  // fewer workers -> bigger per-worker answers
  EXPECT_GT(incast.workloads.front().response_bytes,
            make_scenario("incast", 8, 0.9, 7).workloads.front().response_bytes);
  EXPECT_EQ(make_scenario("incast", 4, 0.9, 7).workloads.front().response_bytes,
            incast.workloads.front().response_bytes);
}

TEST(ScenarioSpec, KeyKeepsFullLoadPrecision) {
  // The key is an identity: loads differing beyond any fixed decimal count
  // must still render apart (shortest-round-trip, not %.2f or %g).
  const ScenarioSpec a = make_scenario("uniform", 8, 0.1234561, 7);
  const ScenarioSpec b = make_scenario("uniform", 8, 0.1234564, 7);
  EXPECT_NE(a.key(), b.key());
  EXPECT_EQ(make_scenario("uniform", 8, 0.5, 7).key(),
            "uniform/slotted/islip:2/solstice/instantaneous/hardware/p8/l0.5/s7");
}

TEST(ScenarioSpec, KeyDistinguishesDisciplines) {
  // A mutator can flip slotted vs hybrid on one scenario — the repo's
  // headline comparison — so the discipline must be part of the key.
  const ScenarioSpec slotted = make_scenario("uniform", 8, 0.5, 7);
  ScenarioSpec hybrid = slotted;
  hybrid.config.discipline = core::SchedulingDiscipline::kHybridEpoch;
  EXPECT_NE(slotted.key(), hybrid.key());
}

TEST(ScenarioSpec, WithLoadNormalisesSharesOverAnyWorkloadCount) {
  // Hand-assembled multi-workload specs (shares left at 1.0) split the load
  // evenly: load() must equal the requested load, never a multiple of it.
  ScenarioSpec s = make_scenario("uniform", 8, 0.5, 7);
  s.workloads.push_back(s.workloads.front());
  s.with_load(0.5);
  EXPECT_DOUBLE_EQ(s.load(), 0.5);
  EXPECT_DOUBLE_EQ(s.workloads[0].load, 0.25);
  EXPECT_DOUBLE_EQ(s.workloads[1].load, 0.25);
}

TEST(ScenarioSpec, CompositeMergesWorkloadsSharesAndVoip) {
  ScenarioSpec s = make_scenario("incast+background", 8, 0.6, 7);
  ASSERT_EQ(s.workloads.size(), 2u);
  EXPECT_EQ(s.workloads[0].kind, topo::WorkloadSpec::Kind::kIncast);
  EXPECT_EQ(s.workloads[1].kind, topo::WorkloadSpec::Kind::kPoissonUniform);
  EXPECT_DOUBLE_EQ(s.workloads[0].share, 0.4);
  EXPECT_DOUBLE_EQ(s.workloads[1].share, 0.6);
  EXPECT_NE(s.workloads[0].seed, s.workloads[1].seed);
  EXPECT_NEAR(s.load(), 0.6, 1e-12);

  // One load axis drives the whole mix, split by share.
  s.with_load(0.8);
  EXPECT_NEAR(s.load(), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(s.workloads[1].load, 0.8 * 0.6);

  // The anchor part supplies the config: composites run hybrid.
  EXPECT_EQ(s.config.discipline, core::SchedulingDiscipline::kHybridEpoch);

  // VOIP overlays merge; the zero-share part contributes no workload.
  const ScenarioSpec sv = make_scenario("shuffle+voip", 8, 0.5, 7);
  EXPECT_GT(sv.voip_pairs, 0u);
  ASSERT_EQ(sv.workloads.size(), 1u);
  EXPECT_EQ(sv.workloads[0].kind, topo::WorkloadSpec::Kind::kShuffle);
  EXPECT_NEAR(sv.load(), 0.5, 1e-12);

  EXPECT_THROW((void)ScenarioSpec::composite("x", {}, {}), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::composite("x", {s}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::composite("x", {s}, {-1.0}), std::invalid_argument);

  // Degenerate share weights are an error, not a silently zeroed point.
  ScenarioSpec zero = make_scenario("uniform", 8, 0.5, 7);
  zero.workloads[0].share = 0.0;
  EXPECT_THROW(zero.with_load(0.5), std::invalid_argument);
}

TEST(ScenarioSpec, EffectiveLoadExposesClampedDerivations) {
  // ON/OFF clamps the duty cycle into [0.05, 0.95]: requesting 0.99 runs at
  // 0.95, and the spec must say so instead of claiming 0.99.
  ScenarioSpec onoff = make_scenario("onoff", 8, 0.5, 7).with_load(0.99);
  EXPECT_DOUBLE_EQ(onoff.load(), 0.99);
  EXPECT_NEAR(onoff.effective_load(), 0.95, 1e-6);

  // Incast floors the per-worker response at one minimum frame: a tiny load
  // over a short period actually offers far more than requested.
  ScenarioSpec incast = make_scenario("incast", 8, 0.5, 7);
  incast.workloads[0].period = sim::Time::microseconds(1);
  incast.with_load(0.0001);
  EXPECT_GT(incast.effective_load(), 100 * incast.load());

  // Both loads appear in the artefact fields.
  bool saw_load = false;
  bool saw_effective = false;
  for (const auto& f : onoff.fields()) {
    saw_load |= f.name() == "load";
    saw_effective |= f.name() == "effective_load";
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_effective);

  // And in the exhaustive cache identity, per workload.
  EXPECT_NE(onoff.identity_json().find("\"effective_load\""), std::string::npos);
}

TEST(ScenarioSpec, MaterializeBuildsTheConfiguredFramework) {
  const ScenarioSpec s = make_scenario("uniform", 4, 0.5, 7);
  const auto fw = materialize(s);
  ASSERT_NE(fw, nullptr);
  EXPECT_EQ(fw->config().ports, 4u);
  EXPECT_EQ(fw->config().discipline, core::SchedulingDiscipline::kSlotted);
}

TEST(ScenarioSpec, MaterializeRejectsUnknownPolicies) {
  ScenarioSpec s = make_scenario("uniform", 4, 0.5, 7);
  s.policies.estimator = "psychic";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);

  s = make_scenario("uniform", 4, 0.5, 7);
  s.policies.timing = "quantum";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);

  s = make_scenario("onoff", 4, 0.5, 7);
  s.policies.circuit = "wormhole";
  EXPECT_THROW((void)materialize(s), std::invalid_argument);
}

TEST(ScenarioSpec, EveryBuiltInScenarioActuallyRuns) {
  // The "trace" scenario reads its CSV from the repo root; tests run from
  // the build tree, so synthesize an equivalent trace in a temp file and
  // point any trace workload at it.  Per-process name: concurrent ctest
  // runs (e.g. a plain and a sanitizer build) must not race on one file.
  const std::string trace_path =
      (std::filesystem::temp_directory_path() /
       ("xdrs_scenario_trace_" + std::to_string(::getpid()) + ".csv"))
          .string();
  {
    std::ofstream out{trace_path, std::ios::trunc};
    out << "start_us,src,dst,bytes,priority\n";
    for (int i = 0; i < 40; ++i) {
      const int src = i % 7;
      out << i * 20 << ',' << src << ',' << (src + 1 + i % 3) % 8 << ',' << 20'000 + i * 997
          << ',' << i % 3 << '\n';
    }
  }
  // Likewise for empirical workloads: the bundled CDFs live in the repo
  // root, and the datamining tail (mean ~50 MB flows) would starve a 5 ms
  // window anyway — substitute a small-flow CDF so every scenario observes
  // traffic.
  const std::string cdf_path =
      (std::filesystem::temp_directory_path() /
       ("xdrs_scenario_cdf_" + std::to_string(::getpid()) + ".csv"))
          .string();
  {
    std::ofstream out{cdf_path, std::ios::trunc};
    out << "bytes,cdf\n2000,0.3\n20000,0.8\n100000,1.0\n";
  }
  for (const auto& name : known_scenarios()) {
    if (name == "test-custom") continue;  // registered by an earlier test
    // Flow-level scenarios start slowly (flow interarrivals are milliseconds
    // at low load), so give every scenario a window long enough to observe.
    ScenarioSpec s = make_scenario(name, 4, 0.5, 5).with_window(5_ms, 500_us);
    for (auto& w : s.workloads) {
      if (w.kind == topo::WorkloadSpec::Kind::kTraceReplay) w.trace_path = trace_path;
      if (w.kind == topo::WorkloadSpec::Kind::kEmpirical) w.cdf_path = cdf_path;
      // Deadline budgets drawn from a CDF read a bundled file too.
      if (w.deadline.kind == traffic::DeadlineSpec::Kind::kCdf) w.deadline.cdf_path = cdf_path;
    }
    const core::RunReport r = run_scenario(s);
    EXPECT_GT(r.offered_packets, 0u) << name;
    EXPECT_GT(r.delivered_packets, 0u) << name;
  }
  std::filesystem::remove(trace_path);
  std::filesystem::remove(cdf_path);
}

TEST(ScenarioSpec, SameSpecIsReproducible) {
  const ScenarioSpec s = make_scenario("shuffle", 4, 0.4, 13).with_window(500_us, 100_us);
  const core::RunReport a = run_scenario(s);
  const core::RunReport b = run_scenario(s);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace xdrs::exp
