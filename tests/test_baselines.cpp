// Tests for the software-scheduler baselines: c-Through and Helios TMS.
#include <gtest/gtest.h>

#include "schedulers/baselines.hpp"
#include "schedulers/hungarian.hpp"
#include "sim/random.hpp"

namespace xdrs::schedulers {
namespace {

demand::DemandMatrix random_demand(std::uint32_t n, sim::Rng& rng, double density) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 50'000));
    }
  }
  return m;
}

TEST(CThrough, EmptyDemandYieldsEmptyPlan) {
  CThroughScheduler s;
  const CircuitPlan plan = s.plan(demand::DemandMatrix{4});
  EXPECT_TRUE(plan.slots.empty());
  EXPECT_EQ(plan.residual.total(), 0);
}

TEST(CThrough, SingleConfigurationPerEpoch) {
  sim::Rng rng{31};
  CThroughScheduler s;
  for (int round = 0; round < 10; ++round) {
    const auto d = random_demand(6, rng, 0.5);
    if (d.total() == 0) continue;
    EXPECT_EQ(s.plan(d).slots.size(), 1u);
  }
}

TEST(CThrough, ConfigurationIsMaxWeightMatching) {
  sim::Rng rng{33};
  CThroughScheduler s;
  HungarianMatcher exact;
  const auto d = random_demand(6, rng, 0.5);
  const CircuitPlan plan = s.plan(d);
  ASSERT_EQ(plan.slots.size(), 1u);
  EXPECT_EQ(HungarianMatcher::matching_weight(plan.slots[0].configuration, d),
            HungarianMatcher::matching_weight(exact.compute(d), d));
}

TEST(CThrough, MatchedPairsFullyServed) {
  demand::DemandMatrix d{4};
  d.set(0, 1, 5000);
  d.set(2, 3, 800);
  d.set(1, 2, 100);
  CThroughScheduler s;
  const CircuitPlan plan = s.plan(d);
  ASSERT_EQ(plan.slots.size(), 1u);
  // The circuit day is long enough for the largest matched backlog, so
  // every matched pair's demand vanishes from the residual.
  plan.slots[0].configuration.for_each_pair([&](net::PortId i, net::PortId j) {
    EXPECT_EQ(plan.residual.at(i, j), 0);
  });
}

TEST(CThrough, UnmatchedDemandStaysResidual) {
  // Three inputs all want output 0: only one can get the circuit.
  demand::DemandMatrix d{3};
  d.set(0, 0, 100);
  d.set(1, 0, 200);
  d.set(2, 0, 300);
  CThroughScheduler s;
  const CircuitPlan plan = s.plan(d);
  EXPECT_EQ(plan.residual.total(), 300);  // 100 + 200 lose; 300 wins
  EXPECT_EQ(plan.residual.at(2, 0), 0);
}

TEST(Tms, ValidatesDayBudget) {
  EXPECT_THROW(TmsScheduler{0}, std::invalid_argument);
}

TEST(Tms, AtMostKDays) {
  sim::Rng rng{35};
  TmsScheduler s{3};
  for (int round = 0; round < 10; ++round) {
    const auto d = random_demand(8, rng, 0.6);
    EXPECT_LE(s.plan(d).slots.size(), 3u);
  }
}

TEST(Tms, MoreDaysCoverMoreDemand) {
  sim::Rng rng{37};
  const auto d = random_demand(8, rng, 0.7);
  TmsScheduler few{1};
  TmsScheduler many{6};
  EXPECT_GE(few.plan(d).residual.total(), many.plan(d).residual.total());
}

TEST(Tms, ResidualBookkeepingIsExact) {
  sim::Rng rng{39};
  TmsScheduler s{2};
  const auto d = random_demand(6, rng, 0.5);
  const CircuitPlan plan = s.plan(d);
  demand::DemandMatrix expect = d;
  for (const auto& slot : plan.slots) {
    slot.configuration.for_each_pair([&](net::PortId i, net::PortId j) {
      expect.subtract_clamped(i, j, slot.weight_bytes);
    });
  }
  EXPECT_EQ(plan.residual, expect);
}

TEST(Tms, NameEncodesBudget) { EXPECT_EQ(TmsScheduler{4}.name(), "tms-4"); }

}  // namespace
}  // namespace xdrs::schedulers
