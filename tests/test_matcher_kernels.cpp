// Kernel-equivalence property tests: the bitset / epoch-warm matcher
// kernels must be EXACT, not approximate.  For every registered matcher
// spec, this file drives the production matcher and an independent
// reference implementation in lockstep over correlated epoch sequences
// (unchanged, lightly mutated, and redrawn demand matrices — the cases the
// warm-rematch caches and the incremental support bitmaps must get right)
// and asserts element-identical matchings and identical iteration counts at
// port counts {8, 64, 65, 128} — 65 exercises the bitset tail word.
//
// The references are transcriptions of the pre-bitset scalar kernels
// (O(N) candidate scans, checked accessors, no caches).  For stateful
// disciplines (round-robin pointers, PIM/SERENA rng streams, rotor phase)
// the reference carries its own state, so any drift in pointer updates or
// random-draw order — not just in the final matching rule — fails the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "schedulers/hopcroft_karp.hpp"
#include "schedulers/matching.hpp"
#include "schedulers/policy_registry.hpp"
#include "sim/random.hpp"

namespace xdrs::schedulers {
namespace {

constexpr std::uint64_t kSeed = 42;  // matcher seed, mirrored by the refs

// ---------------------------------------------------------------- references

/// Interface mirroring the slice of MatchingAlgorithm the tests compare.
class ScalarRef {
 public:
  virtual ~ScalarRef() = default;
  virtual void compute(const demand::DemandMatrix& d, Matching& out) = 0;
  [[nodiscard]] virtual std::uint32_t last_iterations() const = 0;
};

/// The pre-bitset request-grant-accept scaffold: per-output candidate
/// vectors rebuilt by O(N^2) scans each round, sorted ascending by
/// construction.
class ScalarRga : public ScalarRef {
 public:
  explicit ScalarRga(std::uint32_t max_iterations) : max_iterations_{max_iterations} {}

  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    const std::uint32_t inputs = demand.inputs();
    const std::uint32_t outputs = demand.outputs();
    out.reset(inputs, outputs);
    last_iterations_ = 0;
    std::vector<std::vector<net::PortId>> requests(outputs), grants(inputs);
    for (std::uint32_t iter = 0; iter < max_iterations_; ++iter) {
      ++last_iterations_;
      for (auto& r : requests) r.clear();
      bool any_request = false;
      for (std::uint32_t i = 0; i < inputs; ++i) {
        if (out.input_matched(i)) continue;
        for (std::uint32_t j = 0; j < outputs; ++j) {
          if (out.output_matched(j)) continue;
          if (demand.at(i, j) > 0) {
            requests[j].push_back(i);
            any_request = true;
          }
        }
      }
      if (!any_request) break;
      for (auto& g : grants) g.clear();
      for (std::uint32_t j = 0; j < outputs; ++j) {
        if (requests[j].empty()) continue;
        grants[select_grant(j, requests[j])].push_back(j);
      }
      bool any_accept = false;
      for (std::uint32_t i = 0; i < inputs; ++i) {
        if (grants[i].empty()) continue;
        const net::PortId chosen = select_accept(i, grants[i]);
        out.match(i, chosen);
        on_accept(i, chosen, iter);
        any_accept = true;
      }
      if (!any_accept) break;
    }
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return last_iterations_; }

 protected:
  static net::PortId round_robin_pick(const std::vector<net::PortId>& candidates,
                                      std::uint32_t ptr, std::uint32_t wrap) {
    for (const net::PortId c : candidates) {
      if (c >= ptr && c < wrap) return c;
    }
    return candidates.front();
  }

  virtual net::PortId select_grant(net::PortId output,
                                   const std::vector<net::PortId>& candidates) = 0;
  virtual net::PortId select_accept(net::PortId input,
                                    const std::vector<net::PortId>& candidates) = 0;
  virtual void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) = 0;

 private:
  std::uint32_t max_iterations_;
  std::uint32_t last_iterations_{0};
};

class ScalarRrm final : public ScalarRga {
 public:
  ScalarRrm(std::uint32_t ports, std::uint32_t iterations)
      : ScalarRga{iterations}, grant_ptr_(ports, 0), accept_ptr_(ports, 0) {}

 protected:
  net::PortId select_grant(net::PortId output, const std::vector<net::PortId>& c) override {
    const auto wrap = static_cast<std::uint32_t>(accept_ptr_.size());
    const net::PortId chosen = round_robin_pick(c, grant_ptr_[output], wrap);
    grant_ptr_[output] = (chosen + 1) % wrap;
    return chosen;
  }
  net::PortId select_accept(net::PortId input, const std::vector<net::PortId>& c) override {
    const auto wrap = static_cast<std::uint32_t>(grant_ptr_.size());
    const net::PortId chosen = round_robin_pick(c, accept_ptr_[input], wrap);
    accept_ptr_[input] = (chosen + 1) % wrap;
    return chosen;
  }
  void on_accept(net::PortId, net::PortId, std::uint32_t) override {}

 private:
  std::vector<std::uint32_t> grant_ptr_, accept_ptr_;
};

class ScalarIslip final : public ScalarRga {
 public:
  ScalarIslip(std::uint32_t ports, std::uint32_t iterations)
      : ScalarRga{iterations}, grant_ptr_(ports, 0), accept_ptr_(ports, 0) {}

 protected:
  net::PortId select_grant(net::PortId output, const std::vector<net::PortId>& c) override {
    const auto wrap = static_cast<std::uint32_t>(accept_ptr_.size());
    return round_robin_pick(c, grant_ptr_[output], wrap);
  }
  net::PortId select_accept(net::PortId input, const std::vector<net::PortId>& c) override {
    const auto wrap = static_cast<std::uint32_t>(grant_ptr_.size());
    return round_robin_pick(c, accept_ptr_[input], wrap);
  }
  void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) override {
    if (iter != 0) return;
    const auto ports = static_cast<std::uint32_t>(grant_ptr_.size());
    grant_ptr_[j] = (i + 1) % ports;
    accept_ptr_[i] = (j + 1) % ports;
  }

 private:
  std::vector<std::uint32_t> grant_ptr_, accept_ptr_;
};

class ScalarPim final : public ScalarRga {
 public:
  ScalarPim(std::uint32_t iterations, std::uint64_t seed) : ScalarRga{iterations}, rng_{seed} {}

 protected:
  net::PortId select_grant(net::PortId, const std::vector<net::PortId>& c) override {
    return c[rng_.next_below(c.size())];
  }
  net::PortId select_accept(net::PortId, const std::vector<net::PortId>& c) override {
    return c[rng_.next_below(c.size())];
  }
  void on_accept(net::PortId, net::PortId, std::uint32_t) override {}

 private:
  sim::Rng rng_;
};

/// The pre-dense-cost Hungarian: potentials over a checked cost lambda.
class ScalarHungarian final : public ScalarRef {
 public:
  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    const std::uint32_t n32 = std::max(demand.inputs(), demand.outputs());
    const auto n = static_cast<std::size_t>(n32);
    constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
    const auto cost = [&demand](std::size_t i, std::size_t j) -> std::int64_t {
      if (i < demand.inputs() && j < demand.outputs()) {
        return -demand.at(static_cast<net::PortId>(i), static_cast<net::PortId>(j));
      }
      return 0;
    };
    std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0), minv(n + 1);
    std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
    std::vector<char> used(n + 1);
    last_iterations_ = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      p[0] = i;
      std::size_t j0 = 0;
      minv.assign(n + 1, kInf);
      used.assign(n + 1, 0);
      do {
        ++last_iterations_;
        used[j0] = true;
        const std::size_t i0 = p[j0];
        std::int64_t delta = kInf;
        std::size_t j1 = 0;
        for (std::size_t j = 1; j <= n; ++j) {
          if (used[j]) continue;
          const std::int64_t cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
          if (cur < minv[j]) {
            minv[j] = cur;
            way[j] = j0;
          }
          if (minv[j] < delta) {
            delta = minv[j];
            j1 = j;
          }
        }
        for (std::size_t j = 0; j <= n; ++j) {
          if (used[j]) {
            u[p[j]] += delta;
            v[j] -= delta;
          } else {
            minv[j] -= delta;
          }
        }
        j0 = j1;
      } while (p[j0] != 0);
      do {
        const std::size_t j1 = way[j0];
        p[j0] = p[j1];
        j0 = j1;
      } while (j0 != 0);
    }
    out.reset(demand.inputs(), demand.outputs());
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t i = p[j];
      if (i == 0) continue;
      const std::size_t row = i - 1;
      const std::size_t col = j - 1;
      if (row < demand.inputs() && col < demand.outputs() &&
          demand.at(static_cast<net::PortId>(row), static_cast<net::PortId>(col)) > 0) {
        out.match(static_cast<net::PortId>(row), static_cast<net::PortId>(col));
      }
    }
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return last_iterations_; }

 private:
  std::uint32_t last_iterations_{0};
};

/// The pre-bitmap greedy: edge harvest via checked scans, then the same
/// (weight desc, input, output) sort and pick loop.
class ScalarGreedy final : public ScalarRef {
 public:
  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    struct Edge {
      std::int64_t w;
      net::PortId i, j;
    };
    std::vector<Edge> edges;
    for (net::PortId i = 0; i < demand.inputs(); ++i) {
      for (net::PortId j = 0; j < demand.outputs(); ++j) {
        const std::int64_t w = demand.at(i, j);
        if (w > 0) edges.push_back({w, i, j});
      }
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.w != b.w) return a.w > b.w;
      if (a.i != b.i) return a.i < b.i;
      return a.j < b.j;
    });
    out.reset(demand.inputs(), demand.outputs());
    last_iterations_ = 0;
    for (const Edge& e : edges) {
      if (out.size() == std::min(demand.inputs(), demand.outputs())) break;
      if (out.input_matched(e.i) || out.output_matched(e.j)) continue;
      out.match(e.i, e.j);
      ++last_iterations_;
    }
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return last_iterations_; }

 private:
  std::uint32_t last_iterations_{0};
};

/// Max-size via a fresh Hopcroft-Karp per epoch, edges from checked scans
/// (the solver class itself is unchanged by the kernel work).
class ScalarMaxSize final : public ScalarRef {
 public:
  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    HopcroftKarp hk{demand.inputs(), demand.outputs()};
    for (net::PortId i = 0; i < demand.inputs(); ++i) {
      for (net::PortId j = 0; j < demand.outputs(); ++j) {
        if (demand.at(i, j) > 0) hk.add_edge(i, j);
      }
    }
    hk.solve();
    last_iterations_ = hk.phases();
    out.reset(demand.inputs(), demand.outputs());
    for (std::uint32_t l = 0; l < demand.inputs(); ++l) {
      const std::uint32_t r = hk.match_of_left(l);
      if (r != HopcroftKarp::kFree) out.match(l, r);
    }
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return last_iterations_; }

 private:
  std::uint32_t last_iterations_{0};
};

/// The pre-bitset SERENA: candidate vectors and scan-based completion,
/// with its own previous-matching state and rng stream.
class ScalarSerena final : public ScalarRef {
 public:
  ScalarSerena(std::uint32_t ports, std::uint64_t seed)
      : ports_{ports}, rng_{seed}, previous_{ports, ports} {}

  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    Matching carried;
    carried.reset(ports_, ports_);
    previous_.for_each_pair([&](net::PortId i, net::PortId j) {
      if (demand.at(i, j) > 0) carried.match(i, j);
    });

    Matching fresh;
    random_matching_into(demand, fresh);
    merge_into(carried, fresh, demand, out);

    for (std::uint32_t i = 0; i < ports_; ++i) {
      if (out.input_matched(i)) continue;
      for (std::uint32_t j = 0; j < ports_; ++j) {
        if (!out.output_matched(j) && demand.at(i, j) > 0) {
          out.match(i, j);
          break;
        }
      }
    }
    previous_ = out;
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return 1; }

 private:
  static std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void random_matching_into(const demand::DemandMatrix& demand, Matching& out) {
    std::vector<std::uint32_t> order(ports_);
    for (std::uint32_t k = 0; k < ports_; ++k) order[k] = k;
    for (std::uint32_t k = ports_ - 1; k > 0; --k) {
      std::swap(order[k], order[rng_.next_below(k + 1)]);
    }
    out.reset(ports_, ports_);
    std::vector<net::PortId> candidates;
    for (const std::uint32_t i : order) {
      candidates.clear();
      for (std::uint32_t j = 0; j < ports_; ++j) {
        if (!out.output_matched(j) && demand.at(i, j) > 0) candidates.push_back(j);
      }
      if (!candidates.empty()) {
        out.match(i, candidates[rng_.next_below(candidates.size())]);
      }
    }
  }

  void merge_into(const Matching& a, const Matching& b, const demand::DemandMatrix& demand,
                  Matching& out) {
    std::vector<std::size_t> uf(static_cast<std::size_t>(ports_) * 2);
    for (std::size_t x = 0; x < uf.size(); ++x) uf[x] = x;
    const auto out_node = [this](net::PortId j) { return static_cast<std::size_t>(ports_) + j; };
    const auto unite = [&uf](std::size_t x, std::size_t y) { uf[uf_find(uf, x)] = uf_find(uf, y); };
    a.for_each_pair([&](net::PortId i, net::PortId j) { unite(i, out_node(j)); });
    b.for_each_pair([&](net::PortId i, net::PortId j) { unite(i, out_node(j)); });

    std::vector<std::int64_t> wa(static_cast<std::size_t>(ports_) * 2, 0);
    std::vector<std::int64_t> wb(static_cast<std::size_t>(ports_) * 2, 0);
    a.for_each_pair([&](net::PortId i, net::PortId j) { wa[uf_find(uf, i)] += demand.at(i, j); });
    b.for_each_pair([&](net::PortId i, net::PortId j) { wb[uf_find(uf, i)] += demand.at(i, j); });

    out.reset(ports_, ports_);
    a.for_each_pair([&](net::PortId i, net::PortId j) {
      const std::size_t c = uf_find(uf, i);
      if (wa[c] >= wb[c]) out.match(i, j);
    });
    b.for_each_pair([&](net::PortId i, net::PortId j) {
      const std::size_t c = uf_find(uf, i);
      if (wb[c] > wa[c]) out.match(i, j);
    });
  }

  std::uint32_t ports_;
  sim::Rng rng_;
  Matching previous_;
};

/// The pre-bitset wavefront, with its own rotating diagonal offset.
class ScalarWavefront final : public ScalarRef {
 public:
  explicit ScalarWavefront(std::uint32_t ports) : ports_{ports} {}

  void compute(const demand::DemandMatrix& demand, Matching& out) override {
    out.reset(ports_, ports_);
    for (std::uint32_t w = 0; w < ports_; ++w) {
      const std::uint32_t d = (w + offset_) % ports_;
      for (std::uint32_t i = 0; i < ports_; ++i) {
        const std::uint32_t j = (i + d) % ports_;
        if (out.input_matched(i) || out.output_matched(j)) continue;
        if (demand.at(i, j) > 0) out.match(i, j);
      }
    }
    offset_ = (offset_ + 1) % ports_;
  }

  [[nodiscard]] std::uint32_t last_iterations() const override { return ports_; }

 private:
  std::uint32_t ports_;
  std::uint32_t offset_{0};
};

/// Fallback for specs without a hand-written scalar twin (rotor): a second
/// production instance.  Still meaningful — it fails if per-instance state
/// (cache, phase) makes two identically-seeded instances diverge over the
/// same epoch sequence.
class ProductionRef final : public ScalarRef {
 public:
  ProductionRef(const std::string& spec, std::uint32_t ports)
      : matcher_{PolicyRegistry::instance().make_matcher(spec,
                                                         {.ports = ports, .seed = kSeed})} {}

  void compute(const demand::DemandMatrix& d, Matching& out) override {
    matcher_->compute_into(d, out);
  }
  [[nodiscard]] std::uint32_t last_iterations() const override {
    return matcher_->last_iterations();
  }

 private:
  std::unique_ptr<MatchingAlgorithm> matcher_;
};

/// Parses the iteration argument of "name:k" specs (defaults to 1).
std::uint32_t spec_iterations(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return 1;
  return static_cast<std::uint32_t>(std::stoul(spec.substr(colon + 1)));
}

std::unique_ptr<ScalarRef> make_reference(const std::string& spec, std::uint32_t ports) {
  const std::string name = spec.substr(0, spec.find(':'));
  if (name == "rrm") return std::make_unique<ScalarRrm>(ports, spec_iterations(spec));
  if (name == "islip") return std::make_unique<ScalarIslip>(ports, spec_iterations(spec));
  if (name == "pim") return std::make_unique<ScalarPim>(spec_iterations(spec), kSeed);
  if (name == "maxweight") return std::make_unique<ScalarHungarian>();
  if (name == "ilqf") return std::make_unique<ScalarGreedy>();
  if (name == "maxsize") return std::make_unique<ScalarMaxSize>();
  if (name == "serena") return std::make_unique<ScalarSerena>(ports, kSeed);
  if (name == "wavefront") return std::make_unique<ScalarWavefront>(ports);
  return std::make_unique<ProductionRef>(spec, ports);
}

// ------------------------------------------------------------- epoch driver

/// Correlated epoch sequence: redraws, small deltas (including drains to
/// zero, which flip support bits), and exact repeats (the warm-replay hit
/// case) — the mix a real estimator feeds a matcher across epochs.
void step_demand(demand::DemandMatrix& d, std::uint32_t epoch, sim::Rng& rng) {
  const std::uint32_t n = d.inputs();
  switch (epoch % 4) {
    case 0: {  // fresh redraw
      d.clear();
      for (net::PortId i = 0; i < n; ++i) {
        for (net::PortId j = 0; j < n; ++j) {
          if (rng.bernoulli(0.4)) d.set(i, j, rng.uniform_int(1, 1'000'000));
        }
      }
      break;
    }
    case 1:  // exact repeat: unchanged demand, the warm-replay hit
      break;
    case 2: {  // sparse delta: touch ~n cells, half of them drained to zero
      for (std::uint32_t k = 0; k < n; ++k) {
        const auto i = static_cast<net::PortId>(rng.next_below(n));
        const auto j = static_cast<net::PortId>(rng.next_below(n));
        if (rng.bernoulli(0.5)) {
          d.set(i, j, 0);
        } else {
          d.set(i, j, rng.uniform_int(1, 1'000'000));
        }
      }
      break;
    }
    default:  // value-only delta: support pattern unchanged, weights scaled
      for (net::PortId i = 0; i < n; ++i) {
        for (net::PortId j = 0; j < n; ++j) {
          const std::int64_t v = d.at(i, j);
          if (v > 1) d.set(i, j, v / 2 + 1);
        }
      }
      break;
  }
}

void run_lockstep(std::uint32_t ports, std::uint32_t epochs) {
  const auto& registry = PolicyRegistry::instance();
  for (const auto& spec : registry.known_specs(PolicyKind::kMatcher)) {
    auto matcher = registry.make_matcher(spec, {.ports = ports, .seed = kSeed});
    auto reference = make_reference(spec, ports);

    demand::DemandMatrix d{ports};
    sim::Rng workload{ports * 1000003ull + 17};
    Matching got, want;
    for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
      step_demand(d, epoch, workload);
      matcher->compute_into(d, got);
      reference->compute(d, want);
      ASSERT_EQ(got, want) << spec << " at " << ports << " ports, epoch " << epoch;
      ASSERT_EQ(matcher->last_iterations(), reference->last_iterations())
          << spec << " at " << ports << " ports, epoch " << epoch;
    }
  }
}

TEST(MatcherKernels, LockstepAt8Ports) { run_lockstep(8, 16); }
TEST(MatcherKernels, LockstepAt64Ports) { run_lockstep(64, 8); }
TEST(MatcherKernels, LockstepAt65PortsTailWord) { run_lockstep(65, 8); }
TEST(MatcherKernels, LockstepAt128Ports) { run_lockstep(128, 4); }

}  // namespace
}  // namespace xdrs::schedulers
