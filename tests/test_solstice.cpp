// Tests for the Solstice-style threshold-halving hybrid circuit scheduler.
#include <gtest/gtest.h>

#include "schedulers/solstice.hpp"
#include "sim/random.hpp"

namespace xdrs::schedulers {
namespace {

demand::DemandMatrix random_demand(std::uint32_t n, sim::Rng& rng, double density) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 100'000));
    }
  }
  return m;
}

SolsticeConfig cheap_reconfig() {
  SolsticeConfig c;
  c.reconfig_cost_bytes = 0;  // circuits are free: cover everything
  c.min_amortisation = 1.0;
  return c;
}

TEST(Solstice, ValidatesConfig) {
  SolsticeConfig bad = cheap_reconfig();
  bad.reconfig_cost_bytes = -1;
  EXPECT_THROW(SolsticeScheduler{bad}, std::invalid_argument);
  bad = cheap_reconfig();
  bad.min_amortisation = -0.5;
  EXPECT_THROW(SolsticeScheduler{bad}, std::invalid_argument);
}

TEST(Solstice, RequiresSquareMatrix) {
  SolsticeScheduler s{cheap_reconfig()};
  EXPECT_THROW((void)s.plan(demand::DemandMatrix{2, 3}), std::invalid_argument);
}

TEST(Solstice, EmptyDemandYieldsEmptyPlan) {
  SolsticeScheduler s{cheap_reconfig()};
  const CircuitPlan plan = s.plan(demand::DemandMatrix{4});
  EXPECT_TRUE(plan.slots.empty());
  EXPECT_EQ(plan.residual.total(), 0);
}

TEST(Solstice, FreeReconfigCoversAllDemand) {
  sim::Rng rng{21};
  SolsticeScheduler s{cheap_reconfig()};
  for (int round = 0; round < 10; ++round) {
    const auto d = random_demand(8, rng, 0.5);
    const CircuitPlan plan = s.plan(d);
    EXPECT_EQ(plan.residual.total(), 0) << "round " << round;
    EXPECT_FALSE(plan.slots.empty());
  }
}

TEST(Solstice, SlotsArePerfectMatchingsWithPowerOfTwoWeights) {
  sim::Rng rng{23};
  SolsticeScheduler s{cheap_reconfig()};
  const auto d = random_demand(6, rng, 0.6);
  for (const auto& slot : s.plan(d).slots) {
    EXPECT_TRUE(slot.configuration.is_perfect());
    EXPECT_GT(slot.weight_bytes, 0);
    EXPECT_EQ(slot.weight_bytes & (slot.weight_bytes - 1), 0)
        << slot.weight_bytes << " is not a power of two";
  }
}

TEST(Solstice, ThresholdsAreNonIncreasing) {
  sim::Rng rng{25};
  SolsticeScheduler s{cheap_reconfig()};
  const auto d = random_demand(8, rng, 0.7);
  const CircuitPlan plan = s.plan(d);
  for (std::size_t k = 1; k < plan.slots.size(); ++k) {
    EXPECT_LE(plan.slots[k].weight_bytes, plan.slots[k - 1].weight_bytes);
  }
}

TEST(Solstice, ReconfigCostPushesSmallDemandToEps) {
  demand::DemandMatrix d{4};
  d.set(0, 1, 1 << 20);  // 1 MiB elephant
  d.set(1, 0, 1 << 20);
  d.set(2, 3, 100);      // tiny mice
  d.set(3, 2, 100);
  SolsticeConfig c;
  c.reconfig_cost_bytes = 10'000;  // a slot must move >= 10 KB per pair
  c.min_amortisation = 1.0;
  SolsticeScheduler s{c};
  const CircuitPlan plan = s.plan(d);
  // Elephants get circuits; the mice must remain in the residual.
  EXPECT_GT(plan.residual.at(2, 3), 0);
  EXPECT_GT(plan.residual.at(3, 2), 0);
  EXPECT_LT(plan.residual.at(0, 1), 1 << 20);
  for (const auto& slot : plan.slots) {
    EXPECT_GE(slot.weight_bytes, 10'000);
  }
}

TEST(Solstice, MaxSlotsBudgetHonoured) {
  sim::Rng rng{27};
  SolsticeConfig c = cheap_reconfig();
  c.max_slots = 3;
  SolsticeScheduler s{c};
  const auto d = random_demand(8, rng, 0.8);
  const CircuitPlan plan = s.plan(d);
  EXPECT_LE(plan.slots.size(), 3u);
}

TEST(Solstice, ResidualBookkeepingIsExact) {
  sim::Rng rng{29};
  SolsticeConfig c;
  c.reconfig_cost_bytes = 50'000;
  SolsticeScheduler s{c};
  const auto d = random_demand(6, rng, 0.5);
  const CircuitPlan plan = s.plan(d);

  demand::DemandMatrix expect = d;
  for (const auto& slot : plan.slots) {
    slot.configuration.for_each_pair([&](net::PortId i, net::PortId j) {
      expect.subtract_clamped(i, j, slot.weight_bytes);
    });
  }
  EXPECT_EQ(plan.residual, expect);
}

TEST(CircuitPlan, CircuitBytesSumsSlotService) {
  CircuitPlan plan;
  plan.residual = demand::DemandMatrix{2};
  CircuitSlot s1;
  s1.configuration = Matching::rotation(2, 1);
  s1.weight_bytes = 100;
  plan.slots.push_back(s1);
  EXPECT_EQ(plan.circuit_bytes(), 200);  // 2 pairs x 100 bytes
}

}  // namespace
}  // namespace xdrs::schedulers
