// Tests for elastic sweep execution: the WorkSource API (static hand-out
// order, source-spec parsing, plan validation), the lease protocol (claim
// exclusivity, TTL requeue of dead workers' points, heartbeat keep-alive,
// completion-race loser dropping), and the headline guarantee — a
// lease-claimed sweep, crashes included, merges byte-identical to a
// single-process run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/cache.hpp"
#include "exp/lease.hpp"
#include "exp/runner.hpp"
#include "exp/work_source.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

/// Fresh lease/cache directory per test, removed on teardown.
class LeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("xdrs_lease_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Synthetic 16-hex point names — the lease layer never interprets them.
  static std::vector<std::string> hashes(std::size_t n) {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < n; ++i) {
      std::string h = std::to_string(i);
      out.push_back(std::string(16 - h.size(), '0') + h);
    }
    return out;
  }

  /// A worker that plays by the rules (heartbeats, releases on exit).
  LeaseOptions live_worker(double ttl_s = 60.0) const {
    LeaseOptions o;
    o.dir = dir_;
    o.ttl_s = ttl_s;
    return o;
  }

  /// A worker destined for `kill -9`: no heartbeat, claims left behind.
  LeaseOptions doomed_worker(double ttl_s) const {
    LeaseOptions o = live_worker(ttl_s);
    o.heartbeat = false;
    o.release_on_exit = false;
    return o;
  }

  std::string dir_;
};

std::vector<ScenarioSpec> tiny_grid() {
  std::vector<ScenarioSpec> grid{
      make_scenario("uniform", 4, 0.5, 7).with_window(500_us, 100_us)};
  grid = expand(grid, axis_load({0.3, 0.6}));
  grid = expand(grid, axis_matcher({"islip:1", "maxweight"}));
  return grid;  // 4 points
}

// ---- StaticShardSource -----------------------------------------------------

TEST(StaticShardSource, HandsOutTheOwnedSubsequenceInOrderThenDries) {
  StaticShardSource src{{1, 3}, 10};  // owns 1, 4, 7
  EXPECT_EQ(src.next_point(), std::optional<std::size_t>{1});
  EXPECT_EQ(src.next_point(), std::optional<std::size_t>{4});
  EXPECT_TRUE(src.complete(1, 5));  // static slices never race
  EXPECT_EQ(src.next_point(), std::optional<std::size_t>{7});
  EXPECT_EQ(src.next_point(), std::nullopt);
  EXPECT_EQ(src.next_point(), std::nullopt);
  EXPECT_EQ(src.requeue_stale(), 0u);
  EXPECT_EQ(src.stats().completed, 1u);
}

// ---- WorkSourceSpec parsing ------------------------------------------------

TEST(WorkSourceSpec, ParsesStaticAndLeaseSyntax) {
  const WorkSourceSpec st = WorkSourceSpec::parse("static:1/4");
  EXPECT_EQ(st.kind, WorkSourceSpec::Kind::kStatic);
  EXPECT_EQ(st.shard.index, 1u);
  EXPECT_EQ(st.shard.count, 4u);
  EXPECT_EQ(st.describe(), "static:1/4");

  const WorkSourceSpec le = WorkSourceSpec::parse("lease:cache-dir:30");
  EXPECT_EQ(le.kind, WorkSourceSpec::Kind::kLease);
  EXPECT_EQ(le.lease_dir, "cache-dir");
  EXPECT_EQ(le.lease_ttl_s, 30.0);

  // No TTL: the whole tail is the directory, default TTL.
  EXPECT_EQ(WorkSourceSpec::parse("lease:cache-dir").lease_dir, "cache-dir");
  EXPECT_EQ(WorkSourceSpec::parse("lease:cache-dir").lease_ttl_s, 60.0);
  // A colon-bearing path stays usable when the final segment is not numeric.
  EXPECT_EQ(WorkSourceSpec::parse("lease:/mnt/a:b/cache").lease_dir, "/mnt/a:b/cache");
  EXPECT_EQ(WorkSourceSpec::parse("lease:/mnt/a:b/cache:15.5").lease_dir, "/mnt/a:b/cache");
}

TEST(WorkSourceSpec, RejectsMalformedSpecsNamingThePiece) {
  EXPECT_THROW((void)WorkSourceSpec::parse("static:2/2"), std::invalid_argument);
  EXPECT_THROW((void)WorkSourceSpec::parse("static:x/2"), std::invalid_argument);
  EXPECT_THROW((void)WorkSourceSpec::parse("lease:"), std::invalid_argument);
  EXPECT_THROW((void)WorkSourceSpec::parse("lease:dir:0"), std::invalid_argument);
  EXPECT_THROW((void)WorkSourceSpec::parse("lease:dir:-1"), std::invalid_argument);
  EXPECT_THROW((void)WorkSourceSpec::parse("roundrobin:dir"), std::invalid_argument);
}

// ---- ExecutionPlan validation ---------------------------------------------

TEST(ExecutionPlan, ResolvedSourceNamesTheBadField) {
  const auto message_of = [](const ExecutionPlan& plan) -> std::string {
    try {
      (void)plan.resolved_source();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  ExecutionPlan zero_count;
  zero_count.shard = {0, 0};
  EXPECT_NE(message_of(zero_count).find("shard.count"), std::string::npos);

  ExecutionPlan oob;
  oob.shard = {2, 2};
  EXPECT_NE(message_of(oob).find("shard.index"), std::string::npos);

  ExecutionPlan empty_dir;
  empty_dir.source.kind = WorkSourceSpec::Kind::kLease;
  EXPECT_NE(message_of(empty_dir).find("lease_dir"), std::string::npos);

  ExecutionPlan bad_ttl;
  bad_ttl.source = WorkSourceSpec::lease("dir", 0.0);
  EXPECT_NE(message_of(bad_ttl).find("lease_ttl_s"), std::string::npos);

  ExecutionPlan conflict;
  conflict.shard = {1, 2};
  conflict.source = WorkSourceSpec::lease("dir");
  EXPECT_NE(message_of(conflict).find("shard"), std::string::npos);

  ExecutionPlan disagree;
  disagree.shard = {1, 2};
  disagree.source = WorkSourceSpec::static_shard({1, 3});
  EXPECT_NE(message_of(disagree).find("conflicts"), std::string::npos);
}

TEST(ExecutionPlan, LegacyShardFieldFoldsIntoTheSource) {
  ExecutionPlan legacy;
  legacy.shard = {1, 2};  // the pre-ExecutionPlan call-site idiom
  const WorkSourceSpec resolved = legacy.resolved_source();
  EXPECT_EQ(resolved.kind, WorkSourceSpec::Kind::kStatic);
  EXPECT_EQ(resolved.shard.index, 1u);
  EXPECT_EQ(resolved.shard.count, 2u);

  // Matching shard and source agree quietly.
  ExecutionPlan both = legacy;
  both.source = WorkSourceSpec::static_shard({1, 2});
  EXPECT_EQ(both.resolved_source().shard.count, 2u);
}

// ---- lease protocol --------------------------------------------------------

TEST_F(LeaseTest, ClaimsAreExclusiveAcrossWorkers) {
  LeaseWorkSource w1{live_worker(), hashes(6)};
  LeaseWorkSource w2{live_worker(), hashes(6)};

  std::set<std::size_t> w1_claims;
  while (const auto i = w1.try_next()) w1_claims.insert(*i);
  EXPECT_EQ(w1_claims.size(), 6u);

  // Every point is claimed and live: w2 can take nothing, but the sweep is
  // not exhausted — those claims could yet die and come back.
  EXPECT_EQ(w2.try_next(), std::nullopt);
  EXPECT_FALSE(w2.exhausted());
  EXPECT_EQ(w2.stats().claimed, 0u);

  for (const std::size_t i : w1_claims) EXPECT_TRUE(w1.complete(i, 10));
  EXPECT_EQ(w2.try_next(), std::nullopt);
  EXPECT_TRUE(w2.exhausted());
  EXPECT_EQ(w2.stats().already_done, 6u);
}

TEST_F(LeaseTest, DeadWorkersPointsAreRequeuedAfterTtl) {
  {
    LeaseWorkSource doomed{doomed_worker(0.05), hashes(2)};
    ASSERT_TRUE(doomed.try_next().has_value());
    // "kill -9": destroyed without completing or releasing.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{200});

  LeaseWorkSource survivor{live_worker(0.05), hashes(2)};
  EXPECT_EQ(survivor.requeue_stale(), 1u);
  std::set<std::size_t> got;
  while (const auto i = survivor.try_next()) {
    got.insert(*i);
    EXPECT_TRUE(survivor.complete(*i, 10));
  }
  EXPECT_EQ(got.size(), 2u);  // the stolen point AND the untouched one
  EXPECT_EQ(survivor.stats().requeued, 1u);

  // The requeue is recorded: the stolen point's completion is attempt 2.
  const LeaseScan scan = scan_leases(dir_, hashes(2), 0.05);
  EXPECT_EQ(scan.done, 2u);
  EXPECT_EQ(scan.requeued, 1u);
}

TEST_F(LeaseTest, HeartbeatKeepsSlowClaimsAlive) {
  LeaseWorkSource slow{live_worker(1.0), hashes(1)};
  ASSERT_TRUE(slow.try_next().has_value());
  // Longer than the TTL: without the heartbeat this claim would be stolen.
  std::this_thread::sleep_for(std::chrono::milliseconds{1300});

  LeaseWorkSource vulture{live_worker(1.0), hashes(1)};
  EXPECT_EQ(vulture.requeue_stale(), 0u);
  EXPECT_EQ(vulture.try_next(), std::nullopt);
  EXPECT_TRUE(slow.complete(0, 10));
}

TEST_F(LeaseTest, CompletionRaceDropsTheLoserExactlyOnce) {
  LeaseWorkSource stalled{doomed_worker(0.05), hashes(1)};
  ASSERT_EQ(stalled.try_next(), std::optional<std::size_t>{0});
  std::this_thread::sleep_for(std::chrono::milliseconds{200});

  // The claim looks dead; a second worker steals and finishes the point.
  LeaseWorkSource thief{live_worker(0.05), hashes(1)};
  ASSERT_EQ(thief.try_next(), std::optional<std::size_t>{0});
  EXPECT_TRUE(thief.complete(0, 10));

  // The stalled worker wakes up and tries to publish: it lost, and must
  // drop its result so the merge stays exactly-once.
  EXPECT_FALSE(stalled.complete(0, 10));
  EXPECT_EQ(stalled.stats().lost, 1u);
  EXPECT_EQ(thief.stats().completed, 1u);
}

TEST_F(LeaseTest, OrderlyExitReleasesClaimsImmediately) {
  {
    LeaseWorkSource polite{live_worker(/*ttl_s=*/3600.0), hashes(1)};
    ASSERT_TRUE(polite.try_next().has_value());
  }  // destructor releases the claim — no TTL wait for the next worker
  LeaseWorkSource next{live_worker(3600.0), hashes(1)};
  EXPECT_EQ(next.try_next(), std::optional<std::size_t>{0});
  EXPECT_TRUE(next.complete(0, 10));
  // No steal happened, so nothing reads as requeued.
  EXPECT_EQ(scan_leases(dir_, hashes(1), 3600.0).requeued, 0u);
}

TEST_F(LeaseTest, AbandonMakesThePointClaimableAgain) {
  LeaseWorkSource w1{live_worker(3600.0), hashes(1)};
  LeaseWorkSource w2{live_worker(3600.0), hashes(1)};
  ASSERT_TRUE(w1.try_next().has_value());
  EXPECT_EQ(w2.try_next(), std::nullopt);
  w1.abandon(0);
  EXPECT_EQ(w2.try_next(), std::optional<std::size_t>{0});
}

TEST_F(LeaseTest, ScanDoneWallsRecordsCompletionCosts) {
  LeaseWorkSource w{live_worker(), hashes(3)};
  ASSERT_TRUE(w.try_next().has_value());
  ASSERT_TRUE(w.try_next().has_value());
  EXPECT_TRUE(w.complete(0, 1234));
  EXPECT_TRUE(w.complete(1, 5678));
  const auto walls = scan_done_walls(dir_);
  ASSERT_EQ(walls.size(), 2u);
  EXPECT_EQ(walls.at(hashes(3)[0]), 1234);
  EXPECT_EQ(walls.at(hashes(3)[1]), 5678);
}

// The multi-worker race, in-process: three workers hammer one directory and
// every point is completed exactly once.  This test (with test_shard_merge
// and test_experiment_runner) also runs under TSan in CI.
TEST_F(LeaseTest, ThreeWorkerRaceCompletesEveryPointExactlyOnce) {
  constexpr std::size_t kPoints = 24;
  std::atomic<std::uint64_t> kept{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([this, &kept] {
      LeaseOptions o = live_worker();
      o.poll_s = 0.005;
      LeaseWorkSource src{o, hashes(kPoints)};
      while (const auto i = src.next_point()) {
        if (src.complete(*i, 1)) kept.fetch_add(1);
      }
      EXPECT_TRUE(src.exhausted());
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(kept.load(), kPoints);
  const LeaseScan scan = scan_leases(dir_, hashes(kPoints), 60.0);
  EXPECT_EQ(scan.done, kPoints);
  EXPECT_EQ(scan.live + scan.stale + scan.unclaimed, 0u);
}

// ---- the headline guarantee ------------------------------------------------

TEST_F(LeaseTest, LeaseRunMergesByteIdenticalToStaticRun) {
  const auto grid = tiny_grid();
  ExecutionPlan static_plan;
  static_plan.threads = 1;
  const SweepResult single = ExperimentRunner{static_plan}.run(grid);

  ExecutionPlan lease_plan;
  lease_plan.source = WorkSourceSpec::lease(dir_);
  const SweepResult elastic = ExperimentRunner{lease_plan}.run(grid);
  EXPECT_EQ(elastic.source_stats.claimed, grid.size());

  // One worker won everything, so its shard file alone covers the grid.
  const SweepResult merged = SweepResult::merge_shards(grid, {elastic.to_shard_json()});
  EXPECT_EQ(merged.to_json(), single.to_json());
  EXPECT_EQ(merged.to_csv(), single.to_csv());
}

// The satellite scenario end-to-end: a worker claims a point, writes no
// completion, dies; past the TTL a second worker requeues and completes it,
// and the merge is byte-identical to the single-process artefact.
TEST_F(LeaseTest, CrashedClaimIsRecomputedAndMergesByteIdentical) {
  const auto grid = tiny_grid();
  ExecutionPlan static_plan;
  static_plan.threads = 1;
  const SweepResult single = ExperimentRunner{static_plan}.run(grid);

  std::vector<std::string> point_hashes;
  for (const ScenarioSpec& s : grid) point_hashes.push_back(spec_hash_hex(s));
  {
    LeaseWorkSource doomed{doomed_worker(0.05), point_hashes};
    ASSERT_TRUE(doomed.try_next().has_value());  // claimed, never completed
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{200});

  ExecutionPlan survivor;
  survivor.source = WorkSourceSpec::lease(dir_, 0.05);
  const SweepResult rerun = ExperimentRunner{survivor}.run(grid);
  EXPECT_EQ(rerun.source_stats.requeued, 1u);
  EXPECT_EQ(rerun.points.size(), grid.size());

  const SweepResult merged = SweepResult::merge_shards(grid, {rerun.to_shard_json()});
  EXPECT_EQ(merged.to_json(), single.to_json());

  const LeaseScan scan = scan_leases(dir_, point_hashes, 0.05);
  EXPECT_EQ(scan.done, grid.size());
  EXPECT_EQ(scan.requeued, 1u);
}

// A killed worker's computed points survive in the shared result cache
// (stores precede completion markers), so merge --cache recovers points no
// shard file covers — still byte-identical.
TEST_F(LeaseTest, MergeBackfillsUncoveredPointsFromTheCache) {
  const auto grid = tiny_grid();
  ExecutionPlan static_plan;
  static_plan.threads = 1;
  const SweepResult single = ExperimentRunner{static_plan}.run(grid);

  ResultCache cache{dir_};
  ExecutionPlan worker1;  // computes half the grid, "dies" before publishing
  worker1.shard = {0, 2};
  worker1.cache = &cache;
  (void)ExperimentRunner{worker1}.run(grid);  // shard file never written

  ExecutionPlan worker2;
  worker2.shard = {1, 2};
  worker2.cache = &cache;
  const SweepResult half = ExperimentRunner{worker2}.run(grid);

  // Without the cache the merge is short; with it, recovery.
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {half.to_shard_json()}),
               std::invalid_argument);
  const SweepResult recovered =
      SweepResult::merge_shards(grid, {half.to_shard_json()}, &cache);
  EXPECT_EQ(recovered.to_json(), single.to_json());
  EXPECT_EQ(recovered.to_csv(), single.to_csv());
}

}  // namespace
}  // namespace xdrs::exp
