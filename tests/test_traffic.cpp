// Tests for destination patterns, size models and packet/flow generators.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/generators.hpp"
#include "traffic/patterns.hpp"

namespace xdrs::traffic {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

TEST(UniformChooser, NeverPicksSource) {
  UniformChooser c{8};
  sim::Rng rng{1};
  for (int i = 0; i < 10'000; ++i) {
    const net::PortId src = static_cast<net::PortId>(i % 8);
    EXPECT_NE(c.pick(rng, src), src);
  }
}

TEST(UniformChooser, CoversAllOtherPorts) {
  UniformChooser c{4};
  sim::Rng rng{2};
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 30'000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<std::size_t>(c.pick(rng, 0))];
  EXPECT_EQ(counts[0], 0);
  for (std::size_t j = 1; j < 4; ++j) EXPECT_NEAR(counts[j], kDraws / 3, kDraws / 30);
}

TEST(UniformChooser, RequiresTwoPorts) {
  EXPECT_THROW(UniformChooser{1}, std::invalid_argument);
}

TEST(PermutationChooser, FixedShift) {
  PermutationChooser c{4, 1};
  sim::Rng rng{3};
  EXPECT_EQ(c.pick(rng, 0), 1u);
  EXPECT_EQ(c.pick(rng, 3), 0u);
}

TEST(PermutationChooser, ZeroShiftCoercedToOne) {
  PermutationChooser c{4, 0};
  sim::Rng rng{4};
  EXPECT_EQ(c.pick(rng, 2), 3u);  // identity would self-send
}

TEST(HotspotChooser, RespectsHotFraction) {
  HotspotChooser c{8, 0, 0.5};
  sim::Rng rng{5};
  int hot = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) hot += c.pick(rng, 3) == 0;
  // 0.5 direct + 0.5 * (1/7) via the uniform arm.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.5 + 0.5 / 7.0, 0.01);
}

TEST(HotspotChooser, HotSourceFallsBackToUniform) {
  HotspotChooser c{4, 0, 1.0};
  sim::Rng rng{6};
  for (int i = 0; i < 100; ++i) EXPECT_NE(c.pick(rng, 0), 0u);
}

TEST(HotspotChooser, Validation) {
  EXPECT_THROW(HotspotChooser(4, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(HotspotChooser(4, 0, 1.5), std::invalid_argument);
}

TEST(ZipfChooser, SkewConcentratesOnFirstRanks) {
  ZipfChooser c{8, 1.5};
  sim::Rng rng{7};
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) ++counts[c.pick(rng, 0)];
  EXPECT_EQ(counts[0], 0);           // never self
  EXPECT_GT(counts[1], counts[4]);   // rank 0 maps to port 1 for src 0
  EXPECT_GT(counts[1], kDraws / 3);  // heavily skewed
}

TEST(FixedSize, AlwaysSame) {
  FixedSize s{777};
  sim::Rng rng{8};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 777);
  EXPECT_DOUBLE_EQ(s.mean_bytes(), 777.0);
  EXPECT_THROW(FixedSize{0}, std::invalid_argument);
}

TEST(BimodalSize, MixMatchesFraction) {
  BimodalSize s{0.75};
  sim::Rng rng{9};
  int small = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) small += s.sample(rng) == sim::kMinFrameBytes;
  EXPECT_NEAR(static_cast<double>(small) / kDraws, 0.75, 0.01);
  EXPECT_NEAR(s.mean_bytes(), 0.75 * 64 + 0.25 * 1518, 1e-9);
}

TEST(DatacenterPacketMix, MeanMatchesSampledMean) {
  DatacenterPacketMix s;
  sim::Rng rng{10};
  double sum = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(s.sample(rng));
  EXPECT_NEAR(sum / kDraws, s.mean_bytes(), s.mean_bytes() * 0.02);
}

// ---------------------------------------------------------------- sources

PoissonGenerator::Config poisson_config(double load, std::uint64_t seed = 11) {
  PoissonGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.load = load;
  c.dest = std::make_shared<UniformChooser>(4);
  c.size = std::make_shared<FixedSize>(1500);
  c.seed = seed;
  return c;
}

TEST(PoissonGenerator, AchievesConfiguredLoad) {
  sim::Simulator sim;
  PoissonGenerator g{poisson_config(0.6)};
  std::int64_t bytes = 0;
  g.start(sim, [&](const net::Packet& p) { bytes += p.size_bytes + sim::kWireOverheadBytes; },
          10_ms);
  sim.run();
  const double achieved =
      static_cast<double>(bytes) * 8 / (10e9 * 0.010);  // bits over 10 ms at 10 G
  EXPECT_NEAR(achieved, 0.6, 0.05);
}

TEST(PoissonGenerator, ZeroLoadEmitsNothing) {
  sim::Simulator sim;
  PoissonGenerator g{poisson_config(0.0)};
  int n = 0;
  g.start(sim, [&](const net::Packet&) { ++n; }, 10_ms);
  sim.run();
  EXPECT_EQ(n, 0);
}

TEST(PoissonGenerator, DeterministicForSeed) {
  const auto run_once = [] {
    sim::Simulator sim;
    PoissonGenerator g{poisson_config(0.5, 77)};
    std::vector<std::int64_t> stamps;
    g.start(sim, [&](const net::Packet&) { stamps.push_back(sim.now().ps()); }, 1_ms);
    sim.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PoissonGenerator, PacketsCarryMetadata) {
  sim::Simulator sim;
  PoissonGenerator g{poisson_config(0.5)};
  g.start(sim,
          [&](const net::Packet& p) {
            EXPECT_EQ(p.src, 0u);
            EXPECT_NE(p.dst, 0u);
            EXPECT_EQ(p.size_bytes, 1500);
            EXPECT_EQ(p.created_at, sim.now());
            EXPECT_GT(p.id, 0u);
          },
          100_us);
  sim.run();
  EXPECT_GT(g.stats().packets, 0u);
}

TEST(PoissonGenerator, Validation) {
  auto c = poisson_config(0.5);
  c.load = 1.5;
  EXPECT_THROW(PoissonGenerator{c}, std::invalid_argument);
  c = poisson_config(0.5);
  c.dest = nullptr;
  EXPECT_THROW(PoissonGenerator{c}, std::invalid_argument);
  c = poisson_config(0.5);
  c.line_rate = sim::DataRate{};
  EXPECT_THROW(PoissonGenerator{c}, std::invalid_argument);
}

TEST(OnOffGenerator, BurstsAtLineRateDuringOn) {
  sim::Simulator sim;
  OnOffGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.mean_on = 50_us;
  c.mean_off = 50_us;
  c.dest = std::make_shared<UniformChooser>(4);
  c.size = std::make_shared<FixedSize>(1500);
  c.seed = 13;
  OnOffGenerator g{c};

  std::vector<std::int64_t> stamps;
  g.start(sim, [&](const net::Packet&) { stamps.push_back(sim.now().ps()); }, 2_ms);
  sim.run();
  ASSERT_GT(stamps.size(), 10u);
  // Within a burst, packets are back-to-back: gap == serialisation time.
  const std::int64_t tx = sim::DataRate::gbps(10).transmission_time(1520).ps();
  int back_to_back = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i] - stamps[i - 1] == tx) ++back_to_back;
  }
  EXPECT_GT(back_to_back, static_cast<int>(stamps.size()) / 2);
}

TEST(OnOffGenerator, OneDestinationPerBurst) {
  sim::Simulator sim;
  OnOffGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.mean_on = 20_us;
  c.mean_off = 20_us;
  c.dest = std::make_shared<UniformChooser>(8);
  c.size = std::make_shared<FixedSize>(1500);
  c.seed = 17;
  OnOffGenerator g{c};
  std::vector<net::Packet> pkts;
  g.start(sim, [&](const net::Packet& p) { pkts.push_back(p); }, 1_ms);
  sim.run();
  ASSERT_GT(pkts.size(), 4u);
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    if (pkts[i].flow == pkts[i - 1].flow) {
      EXPECT_EQ(pkts[i].dst, pkts[i - 1].dst);
    }
  }
}

TEST(OnOffGenerator, RejectsHeavyTailWithInfiniteMean) {
  OnOffGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.dest = std::make_shared<UniformChooser>(4);
  c.size = std::make_shared<FixedSize>(1500);
  c.pareto_shape = 0.9;
  EXPECT_THROW(OnOffGenerator{c}, std::invalid_argument);
}

TEST(CbrGenerator, ExactPeriodAndCount) {
  sim::Simulator sim;
  CbrGenerator::Config c;
  c.src = 0;
  c.dst = 1;
  c.packet_bytes = 200;
  c.period = 20_us;
  CbrGenerator g{c};
  std::vector<std::int64_t> stamps;
  g.start(sim, [&](const net::Packet& p) {
    stamps.push_back(sim.now().ps());
    EXPECT_EQ(p.tclass, net::TrafficClass::kLatencySensitive);
  }, 1_ms);
  sim.run();
  ASSERT_EQ(stamps.size(), 50u);  // 1 ms / 20 us
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_EQ(stamps[i] - stamps[i - 1], (20_us).ps());
  }
}

TEST(CbrGenerator, PhaseOffsetsFirstPacket) {
  sim::Simulator sim;
  CbrGenerator::Config c;
  c.src = 0;
  c.dst = 1;
  c.period = 20_us;
  c.phase = 7_us;
  CbrGenerator g{c};
  std::int64_t first = -1;
  g.start(sim, [&](const net::Packet&) { if (first < 0) first = sim.now().ps(); }, 100_us);
  sim.run();
  EXPECT_EQ(first, (7_us).ps());
}

TEST(CbrGenerator, Validation) {
  CbrGenerator::Config c;
  c.src = 0;
  c.dst = 0;
  EXPECT_THROW(CbrGenerator{c}, std::invalid_argument);
}

TEST(FlowGenerator, GeneratesFlowsWithConsistentIds) {
  sim::Simulator sim;
  FlowGenerator::Config c;
  c.src = 2;
  c.line_rate = sim::DataRate::gbps(10);
  c.load = 0.5;
  c.elephant_fraction = 0.05;  // mostly mice: many flows per millisecond
  c.dest = std::make_shared<UniformChooser>(4);
  c.seed = 19;
  FlowGenerator g{c};
  std::vector<net::Packet> pkts;
  g.start(sim, [&](const net::Packet& p) { pkts.push_back(p); }, 10_ms);
  sim.run();
  ASSERT_GT(g.flows_started(), 1u);
  // All packets of one flow share src and dst.
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (pkts[i].flow == pkts[j].flow) {
        EXPECT_EQ(pkts[i].dst, pkts[j].dst);
      }
    }
    if (i > 50) break;  // bounded quadratic check
  }
}

TEST(FlowGenerator, ApproximatesConfiguredLoad) {
  sim::Simulator sim;
  FlowGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.load = 0.4;
  c.dest = std::make_shared<UniformChooser>(4);
  c.seed = 23;
  FlowGenerator g{c};
  std::int64_t bytes = 0;
  g.start(sim, [&](const net::Packet& p) { bytes += p.size_bytes; }, 20_ms);
  sim.run();
  const double achieved = static_cast<double>(bytes) * 8 / (10e9 * 0.020);
  // Flow-level load with heavy-tailed sizes converges slowly; wide bounds.
  EXPECT_GT(achieved, 0.15);
  EXPECT_LT(achieved, 0.8);
}

TEST(FlowGenerator, Validation) {
  FlowGenerator::Config c;
  c.src = 0;
  c.line_rate = sim::DataRate::gbps(10);
  c.dest = std::make_shared<UniformChooser>(4);
  c.elephant_shape = 1.0;
  EXPECT_THROW(FlowGenerator{c}, std::invalid_argument);
}

}  // namespace
}  // namespace xdrs::traffic
