// Tests for the parallel sweep engine: grid construction, grid-order result
// collection, error propagation, and the core guarantee — a fixed seed grid
// yields bit-identical serialized results for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "exp/runner.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

std::vector<ScenarioSpec> small_grid() {
  std::vector<ScenarioSpec> grid{
      make_scenario("uniform", 4, 0.5, 7).with_window(500_us, 100_us),
      make_scenario("permutation", 4, 0.5, 7).with_window(500_us, 100_us)};
  grid = expand(grid, axis_load({0.3, 0.6}));
  grid = expand(grid, axis_matcher({"islip:1", "maxweight"}));
  return grid;  // 2 x 2 x 2 = 8 points
}

TEST(Expand, BuildsTheCartesianProductInAxisMajorOrder) {
  const auto grid = small_grid();
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_EQ(grid[0].key(), "uniform/slotted/islip:1/solstice/instantaneous/hardware/p4/l0.3/s7");
  EXPECT_EQ(grid[1].key(), "uniform/slotted/maxweight/solstice/instantaneous/hardware/p4/l0.3/s7");
  EXPECT_EQ(grid[2].key(), "uniform/slotted/islip:1/solstice/instantaneous/hardware/p4/l0.6/s7");
  EXPECT_EQ(grid[7].key(), "permutation/slotted/maxweight/solstice/instantaneous/hardware/p4/l0.6/s7");
  EXPECT_THROW((void)expand(grid, {}), std::invalid_argument);
}

TEST(ExperimentRunner, ResultsArriveInGridOrder) {
  const auto grid = small_grid();
  const SweepResult res = ExperimentRunner{}.run(grid);
  ASSERT_EQ(res.points.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(res.points[i].spec.key(), grid[i].key());
    EXPECT_GT(res.points[i].report.offered_packets, 0u);
  }
}

TEST(ExperimentRunner, OneThreadAndManyThreadsAreBitIdentical) {
  const auto grid = small_grid();
  SweepOptions one;
  one.threads = 1;
  SweepOptions many;
  many.threads = 4;
  const SweepResult a = ExperimentRunner{one}.run(grid);
  const SweepResult b = ExperimentRunner{many}.run(grid);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.merged().to_json(), b.merged().to_json());
}

TEST(ExperimentRunner, MergedEqualsFoldOverPoints) {
  const SweepResult res = ExperimentRunner{}.run(small_grid());
  core::RunReport fold;
  for (const auto& p : res.points) fold.merge(p.report);
  EXPECT_EQ(res.merged().to_json(), fold.to_json());
  EXPECT_GE(fold.offered_packets, res.points.front().report.offered_packets);
}

TEST(ExperimentRunner, ProgressSeesEveryPoint) {
  std::atomic<std::size_t> calls{0};
  SweepOptions opts;
  opts.threads = 2;
  opts.progress = [&calls](std::size_t done, std::size_t total, const ScenarioSpec&) {
    ++calls;
    EXPECT_LE(done, total);
  };
  const auto grid = small_grid();
  (void)ExperimentRunner{opts}.run(grid);
  EXPECT_EQ(calls.load(), grid.size());
}

TEST(ExperimentRunner, PointErrorsPropagateToTheCaller) {
  auto grid = small_grid();
  grid[3].policies.estimator = "psychic";
  EXPECT_THROW((void)ExperimentRunner{}.run(grid), std::invalid_argument);
}

TEST(ExperimentRunner, EmptyGridIsEmptyResult) {
  const SweepResult res = ExperimentRunner{}.run({});
  EXPECT_TRUE(res.points.empty());
  EXPECT_EQ(res.merged().offered_packets, 0u);
}

TEST(SweepResult, TableSelectsColumnsByFieldName) {
  const SweepResult res = ExperimentRunner{}.run(
      {make_scenario("uniform", 4, 0.5, 7).with_window(500_us, 100_us)});
  const stats::Table t = res.table({"label", "delivery_ratio", "no_such_field"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("uniform/slotted/islip:2/solstice/instantaneous/hardware/p4/l0.5/s7"), std::string::npos);
  EXPECT_NE(md.find("no_such_field"), std::string::npos);
}

}  // namespace
}  // namespace xdrs::exp
