// Tests for the observability layer: metric registry, scoped spans,
// timeline sampler, Chrome trace export (golden file) and the hard
// telemetry invariant — enabling it never changes results.
#include <gtest/gtest.h>

#include <string>

#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "sim/trace.hpp"
#include "stats/json.hpp"

namespace xdrs {
namespace {

using namespace xdrs::sim::literals;
using sim::TraceCategory;

// ----------------------------------------------------------------- registry

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
  obs::Registry reg;
  obs::Counter& c1 = reg.counter("grants");
  c1.add(3);
  obs::Counter& c2 = reg.counter("grants");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  obs::Timer& t1 = reg.timer("matcher_compute");
  obs::Timer& t2 = reg.timer("circuit_plan");
  EXPECT_NE(&t1, &t2);
  EXPECT_EQ(t1.id(), 0u);
  EXPECT_EQ(t2.id(), 1u);
  EXPECT_EQ(reg.timer_by_id(1), &t2);
  EXPECT_EQ(reg.timer_by_id(7), nullptr);

  reg.gauge("period_us").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("period_us").value(), 2.5);
}

TEST(ObsRegistry, TimerAggregatesExactTotalAndWelford) {
  obs::Registry reg;
  obs::Timer& t = reg.timer("stage");
  t.record_ns(100);
  t.record_ns(300);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_ns(), 400);
  EXPECT_DOUBLE_EQ(t.summary().mean(), 200.0);
  EXPECT_DOUBLE_EQ(t.summary().min(), 100.0);
  EXPECT_DOUBLE_EQ(t.summary().max(), 300.0);
  EXPECT_EQ(t.histogram().count(), 2u);
}

TEST(ObsRegistry, ScopedSpanIsInertWhenDisabledOrDetached) {
  obs::Registry reg;  // disabled by default
  obs::Timer& t = reg.timer("stage");
  { obs::ScopedSpan span{&reg, &t}; }
  EXPECT_EQ(t.count(), 0u);
  { obs::ScopedSpan span{nullptr, nullptr}; }  // the detached hot path
  EXPECT_EQ(t.count(), 0u);

  reg.enable();
  { obs::ScopedSpan span{&reg, &t}; }
  EXPECT_EQ(t.count(), 1u);
}

TEST(ObsRegistry, SpanLogDropsNewestPastCapacity) {
  obs::Registry reg;
  reg.enable();
  reg.reserve_span_log(2);
  obs::Timer& t = reg.timer("stage");
  reg.record_span(t, 10, 1);
  reg.record_span(t, 20, 2);
  reg.record_span(t, 30, 3);  // over capacity: aggregated but not retained
  ASSERT_EQ(reg.spans().size(), 2u);
  EXPECT_EQ(reg.spans()[1].start_ns, 20);
  EXPECT_EQ(reg.spans_dropped(), 1u);
  EXPECT_EQ(t.count(), 3u);  // aggregation never drops
}

// ------------------------------------------------------------------ sampler

TEST(TimelineSampler, FoldsSnapshotsIntoAllSeries) {
  obs::TimelineSampler s{16};
  obs::TimelineSnapshot snap;
  snap.voq_total_bytes = 100;
  snap.voq_max_bytes = 60;
  snap.demand_nonzeros = 3;
  snap.ocs_delivered_bytes = 500;
  snap.eps_delivered_bytes = 200;
  snap.urgent_flows = 2;
  snap.urgent_bytes = 77;
  s.record(1_us, snap);
  snap.voq_total_bytes = 40;
  s.record(2_us, snap);

  EXPECT_EQ(s.samples_offered(), 2u);
  ASSERT_EQ(s.voq_total_bytes().size(), 2u);
  EXPECT_DOUBLE_EQ(s.voq_total_bytes().samples()[1].value, 40.0);
  EXPECT_DOUBLE_EQ(s.voq_total_bytes().peak(), 100.0);
  EXPECT_DOUBLE_EQ(s.urgent_bytes().samples()[0].value, 77.0);
}

TEST(TimelineSampler, TimelineJsonIsSelfDescribingAndParses) {
  obs::TimelineSampler s{16};
  obs::TimelineSnapshot snap;
  snap.voq_total_bytes = 10;
  s.record(5_us, snap);

  const std::string doc = obs::timeline_json(s, 5_us);
  const stats::JsonValue v = stats::parse_json(doc);
  EXPECT_EQ(v.at("timeline_schema").as_u64(), 1u);
  EXPECT_DOUBLE_EQ(v.at("sample_period_us").as_f64(), 5.0);
  EXPECT_EQ(v.at("samples_offered").as_u64(), 1u);
  const auto& series = v.at("series").items();
  ASSERT_EQ(series.size(), 7u);
  EXPECT_EQ(series[0].at("name").as_str(), "voq_total_bytes");
  EXPECT_EQ(series[6].at("name").as_str(), "deadline_urgent_bytes");
  // [t_us, value] pairs.
  const auto& samples = series[0].at("samples").items();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].items()[0].as_f64(), 5.0);
  EXPECT_DOUBLE_EQ(samples[0].items()[1].as_f64(), 10.0);
}

// ------------------------------------------------------------- trace export

/// Golden-file test: fixed recorder events and injected host spans must
/// render to exactly this document, byte for byte, every run — trace
/// exports are diffable artefacts.
TEST(ChromeTrace, GoldenExport) {
  sim::TraceRecorder tr;
  tr.enable();
  tr.record(1_us, TraceCategory::kDemandUpdate);
  tr.record(1_us, TraceCategory::kScheduleStart);
  tr.record(3_us, TraceCategory::kScheduleDone, 4);
  tr.record(5_us, TraceCategory::kReconfigStart);
  tr.record(7_us, TraceCategory::kReconfigDone, 1);
  tr.record(8_us, TraceCategory::kDeliver, 2, 3);

  obs::Registry reg;
  reg.enable();
  reg.reserve_span_log(8);
  obs::Timer& t = reg.timer("matcher_compute");
  reg.record_span(t, 1000, 250);
  reg.record_span(t, 2000, 750);

  const std::string expected =
      "{\n"
      "\"displayTimeUnit\": \"ns\",\n"
      "\"traceEvents\": [\n"
      "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"virtual time "
      "(simulation)\"}},\n"
      "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"host time "
      "(compute spans)\"}},\n"
      "  {\"name\":\"demand_update\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1,"
      "\"pid\":1,\"tid\":1,\"args\":{\"a\":0,\"b\":0}},\n"
      "  {\"name\":\"schedule\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":1,\"dur\":2,\"pid\":1,"
      "\"tid\":1,\"args\":{\"result\":4}},\n"
      "  {\"name\":\"reconfig\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":5,\"dur\":2,\"pid\":1,"
      "\"tid\":1,\"args\":{\"result\":1}},\n"
      "  {\"name\":\"deliver\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":8,\"pid\":1,"
      "\"tid\":1,\"args\":{\"a\":2,\"b\":3}},\n"
      "  {\"name\":\"matcher_compute\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":0,\"dur\":0.25,"
      "\"pid\":2,\"tid\":1},\n"
      "  {\"name\":\"matcher_compute\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":1,\"dur\":0.75,"
      "\"pid\":2,\"tid\":1}\n"
      "]\n"
      "}\n";

  const std::string got = obs::chrome_trace_json(tr, reg);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(obs::chrome_trace_json(tr, reg), got);  // deterministic
  EXPECT_NO_THROW((void)stats::parse_json(got));    // well-formed JSON
}

TEST(ChromeTrace, UnclosedPairsSurfaceAsInstants) {
  sim::TraceRecorder tr;
  tr.enable();
  tr.record(1_us, TraceCategory::kScheduleStart);  // never closed
  obs::Registry reg;
  const std::string doc = obs::chrome_trace_json(tr, reg);
  EXPECT_NE(doc.find("\"schedule_start\""), std::string::npos);
  EXPECT_NO_THROW((void)stats::parse_json(doc));
}

// ------------------------------------------------- framework end-to-end

TEST(Telemetry, NeverPerturbsResults) {
  exp::ScenarioSpec spec = exp::make_scenario("uniform", 4, 0.6, 11);
  spec.with_window(sim::Time::milliseconds(2), sim::Time::microseconds(500));

  const core::RunReport plain = exp::run_scenario(spec);

  std::unique_ptr<core::HybridSwitchFramework> fw = exp::materialize(spec);
  fw->enable_telemetry();
  const core::RunReport instrumented = fw->run(spec.duration, spec.warmup);

  // The invariant the whole layer hangs on: byte-identical artefacts.
  EXPECT_EQ(plain.to_json(), instrumented.to_json());

  // And the instrumented run actually observed things.
  const obs::RunTelemetry* t = fw->telemetry();
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->timeline().samples_offered(), 0u);
  EXPECT_GT(t->resolved_period(), sim::Time::zero());
  bool matcher_profiled = false;
  for (const auto& timer : t->registry().timers()) {
    if (timer->name() == "matcher_compute" && timer->count() > 0) matcher_profiled = true;
  }
  EXPECT_TRUE(matcher_profiled);
}

TEST(Telemetry, SidecarJsonParsesAndCarriesIdentity) {
  exp::ScenarioSpec spec = exp::make_scenario("uniform", 4, 0.5, 7);
  spec.with_window(sim::Time::milliseconds(1), sim::Time::zero());

  std::unique_ptr<core::HybridSwitchFramework> fw = exp::materialize(spec);
  obs::TelemetryConfig tc;
  tc.sample_period = 100_us;
  fw->enable_telemetry(tc);
  (void)fw->run(spec.duration, spec.warmup);

  const std::string doc =
      obs::telemetry_sidecar_json(*fw->telemetry(), spec.key(), "deadbeef", spec.scenario);
  const stats::JsonValue v = stats::parse_json(doc);
  EXPECT_EQ(v.at("telemetry_schema").as_u64(), 1u);
  EXPECT_EQ(v.at("key").as_str(), spec.key());
  EXPECT_EQ(v.at("spec_hash").as_str(), "deadbeef");
  EXPECT_EQ(v.at("scenario").as_str(), "uniform");
  EXPECT_DOUBLE_EQ(v.at("timeline").at("sample_period_us").as_f64(), 100.0);
  // Stage entries carry the full summary.
  bool saw_stage = false;
  for (const stats::JsonValue& stage : v.at("stages").items()) {
    if (stage.at("name").as_str() == "estimator_snapshot" && stage.at("count").as_u64() > 0) {
      EXPECT_GE(stage.at("total_ns").as_i64(), 0);
      EXPECT_GE(stage.at("p99_ns").as_i64(), stage.at("p50_ns").as_i64());
      saw_stage = true;
    }
  }
  EXPECT_TRUE(saw_stage);
}

TEST(Telemetry, EnableAfterRunThrows) {
  exp::ScenarioSpec spec = exp::make_scenario("uniform", 4, 0.3, 7);
  spec.with_window(sim::Time::microseconds(200), sim::Time::zero());
  std::unique_ptr<core::HybridSwitchFramework> fw = exp::materialize(spec);
  (void)fw->run(spec.duration, spec.warmup);
  EXPECT_THROW(fw->enable_telemetry(), std::logic_error);
}

}  // namespace
}  // namespace xdrs
