// Unit tests for sim::Time and sim::DataRate — the numeric foundation every
// other result rests on.
#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace xdrs::sim {
namespace {

using namespace xdrs::sim::literals;

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}.ps(), 0);
  EXPECT_TRUE(Time{}.is_zero());
}

TEST(Time, FactoryConversions) {
  EXPECT_EQ(Time::nanoseconds(1).ps(), 1'000);
  EXPECT_EQ(Time::microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(Time::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(Time::seconds(1).ps(), 1'000'000'000'000);
}

TEST(Time, FractionalSeconds) {
  EXPECT_EQ(Time::seconds_f(0.5).ps(), 500'000'000'000);
  EXPECT_EQ(Time::seconds_f(1e-9).ps(), 1'000);
}

TEST(Time, Literals) {
  EXPECT_EQ((5_ns).ps(), 5'000);
  EXPECT_EQ((3_us).ps(), 3'000'000);
  EXPECT_EQ((2_ms).ps(), 2'000'000'000);
  EXPECT_EQ((1_s).ps(), 1'000'000'000'000);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(1_us + 500_ns, Time::nanoseconds(1500));
  EXPECT_EQ(1_us - 500_ns, 500_ns);
  EXPECT_EQ(3 * (10_ns), 30_ns);
  EXPECT_EQ((100_ns) / 4, 25_ns);
  EXPECT_EQ((1_us) / (250_ns), 4);
  EXPECT_EQ((1100_ns) % (250_ns), 100_ns);
}

TEST(Time, CompoundAssignment) {
  Time t = 1_us;
  t += 1_us;
  EXPECT_EQ(t, 2_us);
  t -= 500_ns;
  EXPECT_EQ(t, Time::nanoseconds(1500));
}

TEST(Time, Comparisons) {
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_LE(1_ms, 1_ms);
  EXPECT_TRUE((1_us - 2_us).is_negative());
}

TEST(Time, FloatingAccessors) {
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
  EXPECT_DOUBLE_EQ((2_ms).ms(), 2.0);
  EXPECT_DOUBLE_EQ((250_ms).sec(), 0.25);
  EXPECT_DOUBLE_EQ((1_ns).ns(), 1.0);
}

TEST(Time, Ratio) {
  EXPECT_DOUBLE_EQ((1_us).ratio(4_us), 0.25);
  EXPECT_DOUBLE_EQ((9_ms).ratio(10_ms), 0.9);
}

TEST(Time, ToStringSelectsUnit) {
  EXPECT_EQ((1_s).to_string(), "1s");
  EXPECT_EQ((2_ms).to_string(), "2ms");
  EXPECT_EQ((5_us).to_string(), "5us");
  EXPECT_EQ((7_ns).to_string(), "7ns");
  EXPECT_EQ(Time::picoseconds(3).to_string(), "3ps");
  EXPECT_EQ(Time::zero().to_string(), "0ps");
}

TEST(Time, MaxIsHuge) { EXPECT_GT(Time::max(), Time::seconds(1'000'000)); }

TEST(DataRate, Conversions) {
  EXPECT_EQ(DataRate::gbps(10).bits_per_sec(), 10'000'000'000LL);
  EXPECT_EQ(DataRate::mbps(100).bits_per_sec(), 100'000'000LL);
  EXPECT_EQ(DataRate::kbps(64).bits_per_sec(), 64'000LL);
  EXPECT_DOUBLE_EQ(DataRate::gbps(40).gbit_per_sec(), 40.0);
}

TEST(DataRate, TransmissionTimeExact) {
  // 1500 B at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ(DataRate::gbps(10).transmission_time(1500), Time::nanoseconds(1200));
  // 64 B at 10 Gbps = 51.2 ns = 51200 ps.
  EXPECT_EQ(DataRate::gbps(10).transmission_time(64), Time::picoseconds(51'200));
}

TEST(DataRate, TransmissionTimeRoundsUp) {
  // 1 byte at 3 bps: 8/3 s = 2.666..s; must round up, never under-run.
  const Time t = DataRate::bps(3).transmission_time(1);
  EXPECT_GE(t.ps(), 2'666'666'666'666LL);
}

TEST(DataRate, ZeroRateNeverCompletes) {
  EXPECT_EQ(DataRate{}.transmission_time(100), Time::max());
}

TEST(DataRate, BytesInWindow) {
  // 10 Gbps for 1 us = 10,000 bits = 1250 bytes.
  EXPECT_EQ(DataRate::gbps(10).bytes_in(Time::microseconds(1)), 1250);
  EXPECT_EQ(DataRate::gbps(10).bytes_in(Time::zero()), 0);
}

TEST(DataRate, BytesInversesTransmission) {
  const DataRate r = DataRate::gbps(25);
  for (const std::int64_t bytes : {64LL, 256LL, 1500LL, 9000LL}) {
    const Time t = r.transmission_time(bytes);
    EXPECT_GE(r.bytes_in(t), bytes - 1);
    EXPECT_LE(r.bytes_in(t), bytes + 1);
  }
}

TEST(DataRate, Arithmetic) {
  EXPECT_EQ(DataRate::gbps(10) + DataRate::gbps(30), DataRate::gbps(40));
  EXPECT_EQ(DataRate::gbps(40) - DataRate::gbps(15), DataRate::gbps(25));
  EXPECT_EQ(DataRate::gbps(10) * 4, DataRate::gbps(40));
  EXPECT_EQ(DataRate::gbps(40) / 4, DataRate::gbps(10));
}

TEST(DataRate, ToString) {
  EXPECT_EQ(DataRate::gbps(10).to_string(), "10Gbps");
  EXPECT_EQ(DataRate::mbps(100).to_string(), "100Mbps");
}

TEST(FormatBytes, PicksBinaryUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024), "3 MiB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.5 GiB");
}

TEST(FrameConstants, EthernetBasics) {
  EXPECT_EQ(kMinFrameBytes, 64);
  EXPECT_EQ(kMaxFrameBytes, 1518);
  EXPECT_EQ(kWireOverheadBytes, 20);
}

}  // namespace
}  // namespace xdrs::sim
