// Tests for the Matching (grant matrix) container invariants.
#include <gtest/gtest.h>

#include "schedulers/matching.hpp"

namespace xdrs::schedulers {
namespace {

TEST(Matching, StartsEmpty) {
  Matching m{4};
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.is_perfect());
  EXPECT_FALSE(m.output_of(0).has_value());
}

TEST(Matching, MatchPairsBothDirections) {
  Matching m{4};
  m.match(1, 2);
  EXPECT_EQ(m.output_of(1), 2u);
  EXPECT_EQ(m.input_of(2), 1u);
  EXPECT_TRUE(m.input_matched(1));
  EXPECT_TRUE(m.output_matched(2));
  EXPECT_FALSE(m.input_matched(0));
  EXPECT_EQ(m.size(), 1u);
}

TEST(Matching, ConflictingPairThrows) {
  Matching m{4};
  m.match(0, 1);
  EXPECT_THROW(m.match(0, 2), std::logic_error);  // input busy
  EXPECT_THROW(m.match(3, 1), std::logic_error);  // output busy
  m.match(0, 1);                                  // exact re-match is idempotent
  EXPECT_EQ(m.size(), 1u);
}

TEST(Matching, UnmatchInput) {
  Matching m{4};
  m.match(0, 1);
  m.unmatch_input(0);
  EXPECT_FALSE(m.input_matched(0));
  EXPECT_FALSE(m.output_matched(1));
  EXPECT_EQ(m.size(), 0u);
  m.unmatch_input(0);  // no-op
  m.match(0, 2);       // can re-match
  EXPECT_EQ(m.output_of(0), 2u);
}

TEST(Matching, PerfectDetection) {
  Matching m{3};
  m.match(0, 1);
  m.match(1, 2);
  EXPECT_FALSE(m.is_perfect());
  m.match(2, 0);
  EXPECT_TRUE(m.is_perfect());
}

TEST(Matching, RectangularDimensions) {
  Matching m{2, 4};
  m.match(0, 3);
  m.match(1, 1);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.is_perfect());  // outputs outnumber inputs
  EXPECT_THROW(m.match(0, 5), std::out_of_range);
}

TEST(Matching, ForEachPairInInputOrder) {
  Matching m{4};
  m.match(2, 0);
  m.match(0, 3);
  std::vector<std::pair<net::PortId, net::PortId>> pairs;
  m.for_each_pair([&](net::PortId i, net::PortId j) { pairs.emplace_back(i, j); });
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<net::PortId, net::PortId>{0, 3}));
  EXPECT_EQ(pairs[1], (std::pair<net::PortId, net::PortId>{2, 0}));
}

TEST(Matching, ClearResets) {
  Matching m{3};
  m.match(0, 0);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.output_matched(0));
}

TEST(Matching, EqualityCompares) {
  Matching a{3}, b{3};
  a.match(0, 1);
  b.match(0, 1);
  EXPECT_EQ(a, b);
  b.match(1, 2);
  EXPECT_NE(a, b);
}

TEST(Matching, RotationIsPerfectPermutation) {
  for (std::uint32_t shift = 0; shift < 5; ++shift) {
    const Matching m = Matching::rotation(5, shift);
    EXPECT_TRUE(m.is_perfect());
    for (net::PortId i = 0; i < 5; ++i) EXPECT_EQ(m.output_of(i), (i + shift) % 5);
  }
}

TEST(Matching, ToStringRendersPairs) {
  Matching m{3};
  m.match(0, 2);
  m.match(1, 0);
  EXPECT_EQ(m.to_string(), "{0>2, 1>0}");
  EXPECT_EQ(Matching{2}.to_string(), "{}");
}

TEST(Matching, OutOfRangeQueriesThrow) {
  Matching m{2};
  EXPECT_THROW((void)m.output_of(2), std::out_of_range);
  EXPECT_THROW((void)m.input_of(2), std::out_of_range);
  EXPECT_THROW(m.unmatch_input(2), std::out_of_range);
}

}  // namespace
}  // namespace xdrs::schedulers
