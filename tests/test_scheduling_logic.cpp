// Tests for the scheduling logic driver and the switching logic:
// configure-before-grant ordering, slotted and hybrid disciplines, timing
// model application and plan supersession.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/scheduling_logic.hpp"
#include "schedulers/rga.hpp"
#include "schedulers/solstice.hpp"

namespace xdrs::core {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

struct Rig {
  explicit Rig(FrameworkConfig c) : cfg{c} {
    ocs = std::make_unique<switching::OpticalCircuitSwitch>(
        sim, switching::OcsConfig{cfg.ports, cfg.link_rate, cfg.ocs_reconfig,
                                  cfg.ocs_fabric_latency});
    switching = std::make_unique<SwitchingLogic>(sim, *ocs, trace);
    sched = std::make_unique<SchedulingLogic>(sim, cfg, *switching, trace);
    sched->set_grant_callback([this](const control::GrantSet& gs) {
      for (const auto& g : gs.grants) grants.push_back(g);
      grant_times.push_back(sim.now());
    });
    sched->set_estimator(std::make_unique<demand::InstantaneousEstimator>(cfg.ports, cfg.ports));
    sched->set_timing_model(std::make_unique<control::IdealTimingModel>());
  }

  FrameworkConfig cfg;
  sim::Simulator sim;
  sim::TraceRecorder trace;
  std::unique_ptr<switching::OpticalCircuitSwitch> ocs;
  std::unique_ptr<SwitchingLogic> switching;
  std::unique_ptr<SchedulingLogic> sched;
  std::vector<control::Grant> grants;
  std::vector<Time> grant_times;
};

FrameworkConfig slotted_config() {
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kSlotted;
  c.slot_time = 10_us;
  c.ocs_reconfig = 100_ns;
  return c;
}

FrameworkConfig hybrid_config() {
  FrameworkConfig c;
  c.ports = 4;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 1_ms;
  c.ocs_reconfig = 1_us;
  c.min_circuit_hold = 10_us;
  return c;
}

TEST(SwitchingLogic, ConfigureFiresReadyAfterDarkPeriod) {
  Rig rig{slotted_config()};
  std::vector<Time> ready_at;
  rig.switching->configure(schedulers::Matching::rotation(4, 1),
                           [&](Time t) { ready_at.push_back(t); }, true);
  rig.sim.run();
  ASSERT_EQ(ready_at.size(), 1u);
  EXPECT_EQ(ready_at[0], 100_ns);
  EXPECT_EQ(rig.switching->stats().configurations_completed, 1u);
}

TEST(SwitchingLogic, OverlappedModeFiresImmediately) {
  Rig rig{slotted_config()};
  std::vector<Time> ready_at;
  rig.switching->configure(schedulers::Matching::rotation(4, 1),
                           [&](Time t) { ready_at.push_back(t); }, false);
  ASSERT_EQ(ready_at.size(), 1u);
  EXPECT_EQ(ready_at[0], Time::zero());  // before the dark period ends
  EXPECT_TRUE(rig.ocs->is_dark());
}

TEST(SwitchingLogic, NewerConfigureSupersedesPending) {
  Rig rig{slotted_config()};
  int first_fired = 0, second_fired = 0;
  rig.switching->configure(schedulers::Matching::rotation(4, 1),
                           [&](Time) { ++first_fired; }, true);
  rig.switching->configure(schedulers::Matching::rotation(4, 2),
                           [&](Time) { ++second_fired; }, true);
  rig.sim.run();
  EXPECT_EQ(first_fired, 0);  // superseded callback must never fire
  EXPECT_EQ(second_fired, 1);
}

TEST(SchedulingLogic, RequiresPlugins) {
  Rig rig{slotted_config()};
  // No matcher installed for slotted discipline.
  EXPECT_THROW(rig.sched->start(), std::logic_error);
}

TEST(SchedulingLogic, SlottedGrantsFollowConfiguration) {
  Rig rig{slotted_config()};
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  rig.sched->on_arrival(0, 1, 5000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(9_us);  // one slot
  ASSERT_FALSE(rig.grants.empty());
  const auto& g = rig.grants.front();
  EXPECT_EQ(g.src, 0u);
  EXPECT_EQ(g.dst, 1u);
  EXPECT_EQ(g.via, control::FabricPath::kOcs);
  // Grants must only appear after the 100 ns reconfiguration.
  EXPECT_GE(rig.grant_times.front(), 100_ns);
  // And the OCS is configured to match.
  EXPECT_TRUE(rig.ocs->circuit_up(0, 1));
}

TEST(SchedulingLogic, SlottedGrantBytesMatchSlotCapacity) {
  Rig rig{slotted_config()};
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  rig.sched->on_arrival(0, 1, 1 << 20, Time::zero());
  rig.sched->start();
  rig.sim.run_until(9_us);
  ASSERT_FALSE(rig.grants.empty());
  // 10 us at 10 Gbps = 12500 bytes.
  EXPECT_EQ(rig.grants.front().bytes, 12'500);
}

TEST(SchedulingLogic, SlottedTicksEverySlot) {
  Rig rig{slotted_config()};
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  rig.sched->on_arrival(0, 1, 5000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(95_us);
  EXPECT_EQ(rig.sched->stats().decisions, 10u);
}

TEST(SchedulingLogic, EmptyDemandProducesNoGrants) {
  Rig rig{slotted_config()};
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  rig.sched->start();
  rig.sim.run_until(50_us);
  EXPECT_TRUE(rig.grants.empty());
  EXPECT_GT(rig.sched->stats().decisions, 0u);
}

TEST(SchedulingLogic, TimingModelDelaysGrants) {
  FrameworkConfig cfg = slotted_config();
  // The software loop takes ~1 ms; the slot must outlast it or every grant
  // window closes before the decision lands (itself a meaningful result —
  // see SlottedSlotShorterThanSoftwareLoopStarves below).
  cfg.slot_time = 5_ms;
  Rig rig{cfg};
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  control::SoftwareTimingConfig stc;  // default: hundreds of us
  rig.sched->set_timing_model(std::make_unique<control::SoftwareSchedulerTimingModel>(stc));
  rig.sched->on_arrival(0, 1, 5000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(5_ms);  // the software loop takes most of a millisecond
  ASSERT_FALSE(rig.grant_times.empty());
  const Time expected_min = rig.sched->last_breakdown().total();
  EXPECT_GE(rig.grant_times.front(), expected_min);
}

TEST(SchedulingLogic, SlottedSlotShorterThanSoftwareLoopStarves) {
  // The paper's core failure mode, end to end: a millisecond software
  // scheduler cannot drive a microsecond slot loop — every window has
  // closed by the time its grants arrive, so no traffic is ever granted.
  Rig rig{slotted_config()};  // 10 us slots
  rig.sched->set_matcher(std::make_unique<schedulers::IslipMatcher>(4, 2));
  rig.sched->set_timing_model(std::make_unique<control::SoftwareSchedulerTimingModel>());
  rig.sched->on_arrival(0, 1, 5000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(10_ms);
  EXPECT_TRUE(rig.grants.empty());
  EXPECT_GT(rig.sched->stats().decisions, 100u);  // it keeps deciding, uselessly
}

TEST(SchedulingLogic, HybridEmitsEpsResidualAndCircuitSlots) {
  Rig rig{hybrid_config()};
  schedulers::SolsticeConfig sc;
  sc.reconfig_cost_bytes = 50'000;  // mice stay electrical
  rig.sched->set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
  // One elephant pair and one mouse pair.
  rig.sched->on_arrival(0, 1, 1 << 20, Time::zero());
  rig.sched->on_arrival(2, 3, 200, Time::zero());
  rig.sched->start();
  rig.sim.run_until(900_us);

  bool saw_ocs = false, saw_eps_mouse = false;
  for (const auto& g : rig.grants) {
    if (g.via == control::FabricPath::kOcs && g.src == 0 && g.dst == 1) saw_ocs = true;
    if (g.via == control::FabricPath::kEps && g.src == 2 && g.dst == 3) saw_eps_mouse = true;
  }
  EXPECT_TRUE(saw_ocs);
  EXPECT_TRUE(saw_eps_mouse);
}

TEST(SchedulingLogic, HybridSlotsAreSequential) {
  Rig rig{hybrid_config()};
  schedulers::SolsticeConfig sc;  // free circuits: several slots
  rig.sched->set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
  rig.sched->on_arrival(0, 1, 100'000, Time::zero());
  rig.sched->on_arrival(1, 2, 60'000, Time::zero());
  rig.sched->on_arrival(2, 0, 20'000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(900_us);

  // OCS grant windows for the same epoch must not overlap (sequential
  // days): sort by start and verify.
  std::vector<std::pair<Time, Time>> windows;
  for (const auto& g : rig.grants) {
    if (g.via == control::FabricPath::kOcs) windows.emplace_back(g.valid_from, g.valid_until);
  }
  ASSERT_GE(windows.size(), 2u);
  std::sort(windows.begin(), windows.end());
  // Windows of the same pair within a slot coincide; distinct slots must
  // be disjoint.
  for (std::size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].first == windows[i - 1].first) continue;  // same slot
    EXPECT_GE(windows[i].first, windows[i - 1].second);
  }
}

TEST(SchedulingLogic, HybridAccountsPlanStatistics) {
  Rig rig{hybrid_config()};
  schedulers::SolsticeConfig sc;
  rig.sched->set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
  rig.sched->on_arrival(0, 1, 100'000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(3_ms);
  EXPECT_GE(rig.sched->stats().decisions, 3u);
  EXPECT_GT(rig.sched->stats().plan_slots.count(), 0u);
}

TEST(SchedulingLogic, RequestsAreCounted) {
  Rig rig{hybrid_config()};
  schedulers::SolsticeConfig sc;
  rig.sched->set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
  control::SchedulingRequest req;
  rig.sched->on_request(req);
  rig.sched->on_request(req);
  EXPECT_EQ(rig.sched->stats().requests_received, 2u);
}

TEST(SchedulingLogic, GuardBandShrinksGrantWindows) {
  FrameworkConfig c = hybrid_config();
  c.sync.guard_band = 2_us;
  Rig rig{c};
  schedulers::SolsticeConfig sc;
  rig.sched->set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
  rig.sched->on_arrival(0, 1, 100'000, Time::zero());
  rig.sched->start();
  rig.sim.run_until(900_us);

  for (const auto& g : rig.grants) {
    if (g.via != control::FabricPath::kOcs) continue;
    // Each window must leave >= guard band after the reconfiguration that
    // preceded it (valid_from = up + guard).
    EXPECT_GE(g.valid_from, rig.cfg.ocs_reconfig + 2_us);
  }
}

}  // namespace
}  // namespace xdrs::core
