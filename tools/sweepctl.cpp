// sweepctl — sweep orchestration from the command line.
//
// A grid preset names a deterministic grid (exp/presets.hpp), so separate
// processes — or separate hosts sharing nothing but these files — can each
// run a slice and a final merge reassembles the exact single-process
// artefact.  Two fan-out styles, freely mixable per ExecutionPlan:
//
// Static shards (fixed point → process assignment):
//
//   host A$ sweepctl run --preset small --shard 0/2 --cache cache/ --out shard0.json
//   host B$ sweepctl run --preset small --shard 1/2 --cache cache/ --out shard1.json
//        $ sweepctl merge --preset small --out sweep.json shard0.json shard1.json
//        $ cmp sweep.json <(bench_sweep --json=/dev/stdout ...)   # byte-identical
//
// Elastic workers (lease-based work stealing — any number of processes,
// join or die at any time, one slow host no longer gates the sweep):
//
//   host A$ sweepctl run --preset small --claim cache/ --out w1.json
//   host B$ sweepctl run --preset small --claim cache/ --out w2.json
//        $ sweepctl status --preset small --leases --claim cache/
//        $ sweepctl merge --preset small --claim cache/ --out sweep.json w1.json w2.json
//
// `--claim DIR` claims points through lease files in DIR/leases (and uses
// DIR as the result cache); a worker that dies stops heartbeating and its
// points are stolen by the survivors after --ttl.  Because the simulator is
// deterministic the merged artefact is byte-identical to a single-process
// run no matter who computed what (CI-gated).  `run --hosts`/`run --k8s`
// emit the ssh fan-out script / Kubernetes Job manifest for a fleet of such
// workers.  `status` reports grid size, cache presence, shard-file coverage
// and (with --leases) live/stale/requeued claims; `presets` sizes a fleet
// from recorded per-point walls.  `gc` evicts cache entries older than
// --keep-days.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exp/cache.hpp"
#include "exp/lease.hpp"
#include "exp/presets.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "stats/json.hpp"
#include "stats/serialize.hpp"
#include "util/file_io.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "sweepctl: %s\n\n", error);
  std::fprintf(stderr,
               "usage: sweepctl <command> [options]\n"
               "\n"
               "commands:\n"
               "  presets [--claim DIR | --cache DIR]\n"
               "                                list grid presets and their sizes; with a\n"
               "                                directory, estimate each preset's wall from\n"
               "                                the per-point walls recorded there, so fleet\n"
               "                                sizing is one command\n"
               "  run    --preset NAME [--source SPEC | --shard I/N | --claim DIR [--ttl S]]\n"
               "         [--cache DIR] [--threads N] [--out FILE] [--csv FILE]\n"
               "         [--telemetry DIR] [--progress]\n"
               "                                run the grid, one static shard of it, or an\n"
               "                                elastic lease-claiming worker's share.\n"
               "                                --source static:I/N | lease:DIR[:TTL_S];\n"
               "                                --shard I/N is sugar for --source static:I/N,\n"
               "                                --claim DIR for --source lease:DIR (and uses\n"
               "                                DIR as the result cache).\n"
               "                                whole grid: writes the sweep artefact JSON;\n"
               "                                shard/lease: writes a shard file for merge.\n"
               "                                --telemetry drops a per-point sidecar into DIR\n"
               "                                (artefacts stay byte-identical)\n"
               "  run    --preset NAME --claim DIR (--hosts h1,h2,... | --k8s N) [--ttl S]\n"
               "         [--out FILE]\n"
               "                                emit the fleet recipe instead of running:\n"
               "                                --hosts writes an ssh fan-out script,\n"
               "                                --k8s N a Kubernetes Job manifest with\n"
               "                                parallelism N (stdout when --out is absent)\n"
               "  merge  --preset NAME [--cache DIR | --claim DIR] --out FILE SHARD.json...\n"
               "                                reassemble shard files into the artefact,\n"
               "                                byte-identical to a single-process run; with\n"
               "                                a cache, points no shard file covers (worker\n"
               "                                died before publishing) are recovered from it\n"
               "  status --preset NAME [--cache DIR] [--leases [--claim DIR] [--ttl S]]\n"
               "         [--telemetry DIR --stages] [SHARD.json...]\n"
               "                                with --leases, show per-point claim state\n"
               "                                (done/live/stale/unclaimed) and requeue\n"
               "                                counts from the lease directory;\n"
               "                                show grid size, cache and shard coverage;\n"
               "                                with shard files, report straggler shards,\n"
               "                                cache-hit vs compute wall split, the\n"
               "                                slowest points and — for multi-rack\n"
               "                                points — the per-hop split (intra/cross-\n"
               "                                rack bytes, core utilisation); with\n"
               "                                --telemetry + --stages, the per-scenario\n"
               "                                stage-cost breakdown\n"
               "  trace  --scenario NAME [--policies STACK] [--ports N] [--load X]\n"
               "         [--seed N] [--racks N [--oversub X] [--locality X]] --out FILE\n"
               "                                run one scenario with event tracing and\n"
               "                                stage profiling on; write a Chrome\n"
               "                                trace-event JSON (load in ui.perfetto.dev).\n"
               "                                multi-rack runs add one counter track per\n"
               "                                tier (per-ToR VOQ depth, core queue depth)\n"
               "  gc     --cache DIR --keep-days N\n"
               "                                evict cache entries older than N days\n");
  return 2;
}

struct Options {
  std::string command;
  std::string preset;
  std::string cache_dir;
  std::string out_path;
  std::string csv_path;
  std::string telemetry_dir;
  std::string scenario;  // trace
  std::string policies;  // trace; empty = the scenario's default stack
  std::string source_spec;  // --source static:I/N | lease:DIR[:TTL]
  std::string claim_dir;    // --claim; sugar for --source lease:DIR
  std::string hosts;        // --hosts h1,h2,...; emit ssh fan-out script
  exp::ShardOptions shard{};
  bool shard_given{false};
  unsigned k8s_parallelism{0};  // --k8s N; emit a Job manifest
  double ttl_s{60.0};           // --ttl; lease TTL for --claim and --leases
  bool leases{false};           // status: lease-state report
  unsigned threads{0};
  std::uint32_t ports{8};    // trace
  double load{0.5};          // trace
  std::uint64_t seed{7};     // trace
  std::uint32_t racks{1};    // trace; >1 runs the scenario on a fat-tree
  double oversub{1.0};       // trace; fat-tree core oversubscription
  double locality{0.9};      // trace; fat-tree rack-locality fraction
  double keep_days{-1.0};  // gc; negative = not given
  bool progress{false};
  bool stages{false};  // status: per-stage telemetry breakdown
  std::vector<std::string> inputs;  // positional shard files
};

bool parse_shard(const std::string& val, exp::ShardOptions& shard) {
  const auto slash = val.find('/');
  if (slash == std::string::npos) return false;
  // Whole-token, in-range parses only (util::parse_number): "0x1/2",
  // "1/2x" and "1/-2" must be rejected, not silently truncated or wrapped
  // to the wrong shard.
  if (!util::parse_number(std::string_view{val}.substr(0, slash), shard.index)) return false;
  if (!util::parse_number(std::string_view{val}.substr(slash + 1), shard.count)) return false;
  return shard.count >= 1 && shard.index < shard.count;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) return nullptr;
      return argv[++a];
    };
    const auto eq = arg.find('=');
    // Accept both "--flag=value" and "--flag value".
    const std::string key = arg.substr(0, eq);
    std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    const auto value = [&]() -> bool {
      if (eq != std::string::npos) return true;
      const char* v = next();
      if (v == nullptr) return false;
      val = v;
      return true;
    };
    try {
      if (key == "--preset") {
        if (!value()) return false;
        opt.preset = val;
      } else if (key == "--shard") {
        if (!value() || !parse_shard(val, opt.shard)) return false;
        opt.shard_given = true;
      } else if (key == "--source") {
        if (!value()) return false;
        opt.source_spec = val;
      } else if (key == "--claim") {
        if (!value()) return false;
        opt.claim_dir = val;
      } else if (key == "--ttl") {
        if (!value() || !util::parse_number(val, opt.ttl_s) || opt.ttl_s <= 0.0) return false;
      } else if (key == "--hosts") {
        if (!value()) return false;
        opt.hosts = val;
      } else if (key == "--k8s") {
        if (!value() || !util::parse_number(val, opt.k8s_parallelism) ||
            opt.k8s_parallelism < 1) {
          return false;
        }
      } else if (key == "--leases") {
        opt.leases = true;
      } else if (key == "--cache") {
        if (!value()) return false;
        opt.cache_dir = val;
      } else if (key == "--out") {
        if (!value()) return false;
        opt.out_path = val;
      } else if (key == "--csv") {
        if (!value()) return false;
        opt.csv_path = val;
      } else if (key == "--threads") {
        // Same whole-token, in-range rule as --shard: "--threads=2x" must
        // not silently run with 2 threads, nor an overflowing or negative
        // value with a wrapped thread count.
        if (!value() || !util::parse_number(val, opt.threads)) return false;
      } else if (key == "--keep-days") {
        if (!value() || !util::parse_number(val, opt.keep_days) || opt.keep_days < 0.0) {
          return false;
        }
      } else if (key == "--telemetry") {
        if (!value()) return false;
        opt.telemetry_dir = val;
      } else if (key == "--scenario") {
        if (!value()) return false;
        opt.scenario = val;
      } else if (key == "--policies") {
        if (!value()) return false;
        opt.policies = val;
      } else if (key == "--ports") {
        if (!value() || !util::parse_number(val, opt.ports) || opt.ports < 2) return false;
      } else if (key == "--load") {
        if (!value() || !util::parse_number(val, opt.load) || opt.load <= 0.0) return false;
      } else if (key == "--seed") {
        if (!value() || !util::parse_number(val, opt.seed)) return false;
      } else if (key == "--racks") {
        if (!value() || !util::parse_number(val, opt.racks) || opt.racks < 1) return false;
      } else if (key == "--oversub") {
        if (!value() || !util::parse_number(val, opt.oversub) || opt.oversub <= 0.0) return false;
      } else if (key == "--locality") {
        if (!value() || !util::parse_number(val, opt.locality) || opt.locality < 0.0 ||
            opt.locality > 1.0) {
          return false;
        }
      } else if (key == "--stages") {
        opt.stages = true;
      } else if (key == "--progress") {
        opt.progress = true;
      } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        return false;
      } else {
        opt.inputs.push_back(arg);
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

void write_file(const std::string& path, const std::string& content) {
  try {
    util::write_file(path, content);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "sweepctl: %s\n", e.what());
    std::exit(1);
  }
}

std::string read_file(const std::string& path) {
  std::optional<std::string> data = util::read_file(path);
  if (!data) {
    std::fprintf(stderr, "sweepctl: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return *std::move(data);
}

// ----------------------------------------------------------------- commands

int cmd_presets(const Options& opt) {
  // Fleet sizing: with a lease/cache directory, estimate each preset's wall
  // from the per-point walls its completion markers recorded.  Presets with
  // partial coverage extrapolate from the measured points' mean.
  const std::string walls_dir = !opt.claim_dir.empty() ? opt.claim_dir : opt.cache_dir;
  std::map<std::string, std::int64_t> walls;
  if (!walls_dir.empty()) walls = exp::scan_done_walls(walls_dir);

  for (const std::string& name : exp::known_presets()) {
    const std::vector<exp::ScenarioSpec> grid = exp::make_preset(name);
    std::printf("%-14s %4zu points", name.c_str(), grid.size());
    if (!walls_dir.empty()) {
      std::int64_t measured_us = 0;
      std::size_t measured = 0;
      for (const exp::ScenarioSpec& spec : grid) {
        const auto it = walls.find(exp::spec_hash_hex(spec));
        if (it == walls.end()) continue;
        measured_us += it->second;
        ++measured;
      }
      if (measured == 0) {
        std::printf("   est wall unknown (0/%zu points measured)", grid.size());
      } else {
        const double est_s = static_cast<double>(measured_us) / 1e6 /
                             static_cast<double>(measured) * static_cast<double>(grid.size());
        std::printf("   est wall %8.1f s (%zu/%zu points measured)", est_s, measured,
                    grid.size());
      }
    }
    std::printf("\n");
  }
  return 0;
}

// --------------------------------------------------------- fleet fan-out

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string item =
        text.substr(begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// The ssh fan-out recipe for `run --hosts`: one elastic worker per host
/// against the shared lease directory, shard files rsynced back, merge with
/// cache backfill.  Emitted, not executed — the operator owns the fleet.
std::string fanout_script(const Options& opt, const std::vector<std::string>& hosts) {
  const std::string ttl = stats::format_double(opt.ttl_s);
  std::string hosts_quoted;
  for (const std::string& h : hosts) {
    if (!hosts_quoted.empty()) hosts_quoted += ' ';
    hosts_quoted += '\'' + h + '\'';
  }
  std::string s;
  s += "#!/usr/bin/env bash\n";
  s += "# Elastic sweep fan-out generated by:\n";
  s += "#   sweepctl run --preset " + opt.preset + " --hosts " + opt.hosts + " --claim " +
       opt.claim_dir + " --ttl " + ttl + "\n";
  s += "# Assumes sweepctl on PATH on every host.  CLAIM on a shared filesystem\n";
  s += "# lets workers steal from each other live; without one, each host runs\n";
  s += "# its own lease dir as a plain cache and the rsync below merges them.\n";
  s += "set -euo pipefail\n";
  s += "PRESET='" + opt.preset + "'\n";
  s += "CLAIM='" + opt.claim_dir + "'\n";
  s += "TTL='" + ttl + "'\n";
  s += "pids=()\n";
  s += "for host in " + hosts_quoted + "; do\n";
  s += "  ssh \"$host\" \"sweepctl run --preset '$PRESET' --claim '$CLAIM' --ttl '$TTL'";
  s += " --out '$CLAIM/$host.shard.json'\" &\n";
  s += "  pids+=(\"$!\")\n";
  s += "done\n";
  s += "for pid in \"${pids[@]}\"; do\n";
  s += "  wait \"$pid\" || true  # a dead worker's points get requeued by the others\n";
  s += "done\n";
  s += "for host in " + hosts_quoted + "; do\n";
  s += "  rsync -a \"$host:$CLAIM/\" \"$CLAIM/\"  # shard files + rsync-merged caches\n";
  s += "done\n";
  s += "sweepctl status --preset \"$PRESET\" --leases --claim \"$CLAIM\" --ttl \"$TTL\"\n";
  s += "sweepctl merge --preset \"$PRESET\" --claim \"$CLAIM\" --out \"sweep-$PRESET.json\" \\\n";
  s += "  \"$CLAIM\"/*.shard.json\n";
  s += "echo \"merged into sweep-$PRESET.json\"\n";
  return s;
}

/// The Kubernetes Job manifest for `run --k8s N`: N pods claiming from one
/// PVC-mounted lease directory; a pod that dies is exactly the crash case
/// the TTL requeue covers, so backoffLimit stays 0.
std::string k8s_manifest(const Options& opt) {
  const std::string n = std::to_string(opt.k8s_parallelism);
  std::string s;
  s += "# Elastic sweep fleet generated by:\n";
  s += "#   sweepctl run --preset " + opt.preset + " --k8s " + n + " --claim " + opt.claim_dir +
       "\n";
  s += "apiVersion: batch/v1\n";
  s += "kind: Job\n";
  s += "metadata:\n";
  s += "  name: sweep-" + opt.preset + "\n";
  s += "spec:\n";
  s += "  parallelism: " + n + "\n";
  s += "  completions: " + n + "\n";
  s += "  backoffLimit: 0\n";
  s += "  template:\n";
  s += "    spec:\n";
  s += "      restartPolicy: Never\n";
  s += "      containers:\n";
  s += "        - name: worker\n";
  s += "          image: xdrs/sweepctl:latest\n";
  s += "          command:\n";
  s += "            - sweepctl\n";
  s += "            - run\n";
  s += "            - --preset=" + opt.preset + "\n";
  s += "            - --claim=" + opt.claim_dir + "\n";
  s += "            - --ttl=" + stats::format_double(opt.ttl_s) + "\n";
  s += "            - --out=" + opt.claim_dir + "/$(POD_NAME).shard.json\n";
  s += "          env:\n";
  s += "            - name: POD_NAME\n";
  s += "              valueFrom:\n";
  s += "                fieldRef:\n";
  s += "                  fieldPath: metadata.name\n";
  s += "          volumeMounts:\n";
  s += "            - name: sweep-claim\n";
  s += "              mountPath: " + opt.claim_dir + "\n";
  s += "      volumes:\n";
  s += "        - name: sweep-claim\n";
  s += "          persistentVolumeClaim:\n";
  s += "            claimName: sweep-claim\n";
  return s;
}

/// Folds the --shard/--source/--claim sugar into one WorkSourceSpec;
/// ExecutionPlan::resolved_source() stays the single validation path for
/// field values, this only rejects contradictory flag combinations.
exp::WorkSourceSpec resolve_source_flags(const Options& opt) {
  const int given = (opt.shard_given ? 1 : 0) + (opt.source_spec.empty() ? 0 : 1) +
                    (opt.claim_dir.empty() ? 0 : 1);
  if (given > 1) {
    throw std::invalid_argument{"--shard, --source and --claim are mutually exclusive"};
  }
  if (opt.shard_given) return exp::WorkSourceSpec::static_shard(opt.shard);
  if (!opt.source_spec.empty()) return exp::WorkSourceSpec::parse(opt.source_spec);
  if (!opt.claim_dir.empty()) return exp::WorkSourceSpec::lease(opt.claim_dir, opt.ttl_s);
  return {};
}

int cmd_run(const Options& opt) {
  // Fleet-recipe emits: describe the elastic fleet instead of running it.
  if (!opt.hosts.empty() || opt.k8s_parallelism != 0) {
    if (!opt.hosts.empty() && opt.k8s_parallelism != 0) {
      return usage("run: --hosts and --k8s are mutually exclusive");
    }
    if (opt.claim_dir.empty()) {
      return usage("run: --hosts/--k8s need --claim DIR (the fleet's shared lease directory)");
    }
    const std::vector<std::string> hosts = split_csv(opt.hosts);
    if (opt.k8s_parallelism == 0 && hosts.empty()) return usage("run: --hosts is empty");
    const std::string doc =
        opt.k8s_parallelism != 0 ? k8s_manifest(opt) : fanout_script(opt, hosts);
    if (opt.out_path.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      write_file(opt.out_path, doc);
      std::printf("wrote %s for preset %s to %s\n",
                  opt.k8s_parallelism != 0 ? "k8s job manifest" : "ssh fan-out script",
                  opt.preset.c_str(), opt.out_path.c_str());
    }
    return 0;
  }

  if (opt.out_path.empty()) return usage("run: --out is required");
  const exp::WorkSourceSpec source = resolve_source_flags(opt);
  const bool lease = source.kind == exp::WorkSourceSpec::Kind::kLease;
  // Partial results (a static slice or an elastic worker's winnings) emit
  // shard files for merge; only a whole-grid run writes the artefact.
  const bool shard_file = lease || source.shard.count > 1;
  if (shard_file && !opt.csv_path.empty()) {
    return usage("run: --csv applies to whole-grid runs only (merge emits the artefact)");
  }
  const std::vector<exp::ScenarioSpec> grid = exp::make_preset(opt.preset);

  // Elastic workers default their result cache to the claim directory:
  // that is what makes a killed worker's computed-but-unpublished points
  // recoverable at merge time.
  const std::string cache_dir = !opt.cache_dir.empty() ? opt.cache_dir
                               : lease                 ? source.lease_dir
                                                       : std::string{};
  std::optional<exp::ResultCache> cache;
  if (!cache_dir.empty()) cache.emplace(cache_dir);

  exp::ExecutionPlan plan;
  plan.threads = opt.threads;
  plan.source = source;
  plan.cache = cache ? &*cache : nullptr;
  plan.telemetry_dir = opt.telemetry_dir;
  if (opt.progress) {
    plan.progress = [](std::size_t done, std::size_t total, const exp::ScenarioSpec& s) {
      std::fprintf(stderr, "[%4zu/%zu] %s\n", done, total, s.key().c_str());
    };
  }

  const exp::SweepResult result = exp::ExperimentRunner{plan}.run(grid);

  write_file(opt.out_path, shard_file ? result.to_shard_json() : result.to_json());
  if (!opt.csv_path.empty()) write_file(opt.csv_path, result.to_csv());

  if (lease) {
    const exp::WorkSourceStats& ws = result.source_stats;
    std::printf("preset %s: %zu points, worker kept %zu (claimed %llu, %llu already done, "
                "requeued %llu, lost %llu)\n",
                opt.preset.c_str(), grid.size(), result.points.size(),
                static_cast<unsigned long long>(ws.claimed),
                static_cast<unsigned long long>(ws.already_done),
                static_cast<unsigned long long>(ws.requeued),
                static_cast<unsigned long long>(ws.lost));
  } else {
    std::printf("preset %s: %zu points, shard %zu/%zu ran %zu\n", opt.preset.c_str(), grid.size(),
                source.shard.index, source.shard.count, result.points.size());
  }
  if (cache) {
    const exp::CacheStats cs = cache->stats();
    std::printf("cache %s: %llu hits, %llu misses, %llu stale, %llu stored (%llu simulated)\n",
                cache->dir().c_str(), static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.stale),
                static_cast<unsigned long long>(cs.stores),
                static_cast<unsigned long long>(cs.misses + cs.stale));
    if (cs.store_failures != 0) {
      std::fprintf(stderr, "sweepctl: warning: %llu cache writes failed (results kept in-run)\n",
                   static_cast<unsigned long long>(cs.store_failures));
    }
  }
  return 0;
}

int cmd_merge(const Options& opt) {
  if (opt.out_path.empty()) return usage("merge: --out is required");
  if (opt.inputs.empty()) return usage("merge: at least one shard file is required");
  const std::vector<exp::ScenarioSpec> grid = exp::make_preset(opt.preset);

  std::vector<std::string> payloads;
  payloads.reserve(opt.inputs.size());
  for (const std::string& path : opt.inputs) payloads.push_back(read_file(path));

  // With a cache (--cache, or the elastic sweep's --claim directory),
  // points no shard file covers — a worker died after computing them but
  // before publishing its shard file — are recovered from cache entries.
  const std::string cache_dir = !opt.cache_dir.empty() ? opt.cache_dir : opt.claim_dir;
  std::optional<exp::ResultCache> cache;
  if (!cache_dir.empty()) cache.emplace(cache_dir);

  const exp::SweepResult result =
      exp::SweepResult::merge_shards(grid, payloads, cache ? &*cache : nullptr);
  write_file(opt.out_path, result.to_json());
  if (!opt.csv_path.empty()) write_file(opt.csv_path, result.to_csv());
  std::printf("merged %zu shard files into %s (%zu points)\n", opt.inputs.size(),
              opt.out_path.c_str(), result.points.size());
  if (cache) {
    const exp::CacheStats cs = cache->stats();
    if (cs.hits != 0) {
      std::printf("recovered %llu uncovered points from cache %s\n",
                  static_cast<unsigned long long>(cs.hits), cache->dir().c_str());
    }
  }
  return 0;
}

/// Per-scenario stage-cost breakdown, aggregated over every telemetry
/// sidecar in `dir` (the `--telemetry` output of `sweepctl run`): for each
/// profiled stage, call count, total wall and share of the scenario's
/// profiled time.  Unreadable files are reported and skipped — status is a
/// diagnostic, it must not die on one truncated sidecar.
void print_stage_breakdown(const std::string& dir) {
  struct StageCost {
    std::uint64_t count{0};
    std::int64_t total_ns{0};
  };
  std::map<std::string, std::map<std::string, StageCost>> by_scenario;
  std::size_t sidecars = 0;

  std::error_code ec;
  std::filesystem::directory_iterator it{dir, ec};
  if (ec) {
    std::printf("telemetry %s: unreadable (%s)\n", dir.c_str(), ec.message().c_str());
    return;
  }
  constexpr std::string_view kSuffix = ".telemetry.json";
  for (const auto& de : it) {
    const std::string path = de.path().string();
    if (path.size() < kSuffix.size() ||
        std::string_view{path}.substr(path.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    try {
      const stats::JsonValue doc = stats::parse_json(read_file(path));
      const std::string& scenario = doc.at("scenario").as_str();
      for (const stats::JsonValue& stage : doc.at("stages").items()) {
        StageCost& cost = by_scenario[scenario][stage.at("name").as_str()];
        cost.count += stage.at("count").as_u64();
        cost.total_ns += stage.at("total_ns").as_i64();
      }
      ++sidecars;
    } catch (const std::invalid_argument& e) {
      std::printf("telemetry %s: skipped (%s)\n", path.c_str(), e.what());
    }
  }
  std::printf("telemetry %s: %zu sidecars\n", dir.c_str(), sidecars);

  for (const auto& [scenario, stages] : by_scenario) {
    std::int64_t scenario_total = 0;
    for (const auto& [name, cost] : stages) scenario_total += cost.total_ns;
    std::printf("stage costs %s (profiled wall %.2f ms):\n", scenario.c_str(),
                static_cast<double>(scenario_total) / 1e6);
    // Costliest stage first: the line a reader acts on is the top one.
    std::vector<std::pair<std::string, StageCost>> ordered{stages.begin(), stages.end()};
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      return a.second.total_ns > b.second.total_ns;
    });
    for (const auto& [name, cost] : ordered) {
      const double mean_us = cost.count == 0
                                 ? 0.0
                                 : static_cast<double>(cost.total_ns) /
                                       static_cast<double>(cost.count) / 1e3;
      const double share = scenario_total == 0 ? 0.0
                                               : 100.0 * static_cast<double>(cost.total_ns) /
                                                     static_cast<double>(scenario_total);
      std::printf("  %-20s %8llu calls  total %9.2f ms  mean %8.2f us  (%5.1f%%)\n",
                  name.c_str(), static_cast<unsigned long long>(cost.count),
                  static_cast<double>(cost.total_ns) / 1e6, mean_us, share);
    }
  }
}

/// The elastic-sweep view: per-point claim state from the lease directory.
/// Read-only — reporting must never perturb a live fleet's claims.
int print_lease_report(const Options& opt, const std::vector<exp::ScenarioSpec>& grid) {
  const std::string dir = !opt.claim_dir.empty() ? opt.claim_dir : opt.cache_dir;
  if (dir.empty()) {
    std::fprintf(stderr, "sweepctl: status --leases needs --claim DIR (or --cache DIR)\n");
    return 2;
  }
  std::vector<std::string> hashes;
  hashes.reserve(grid.size());
  for (const exp::ScenarioSpec& spec : grid) hashes.push_back(exp::spec_hash_hex(spec));
  const exp::LeaseScan scan = exp::scan_leases(dir, hashes, opt.ttl_s);
  std::printf("leases %s: %zu done, %zu live, %zu stale, %zu unclaimed, %zu requeued\n",
              dir.c_str(), scan.done, scan.live, scan.stale, scan.unclaimed, scan.requeued);
  for (const exp::LeaseScan::Point& p : scan.points) {
    // One line per point that tells an operator something: in-flight claims
    // (live or stale) and any point a steal has requeued.
    const char* state = nullptr;
    switch (p.state) {
      case exp::LeaseScan::State::kLive:
        state = "live";
        break;
      case exp::LeaseScan::State::kStale:
        state = "stale";
        break;
      case exp::LeaseScan::State::kDone:
        state = p.attempt > 1 ? "done" : nullptr;
        break;
      case exp::LeaseScan::State::kUnclaimed:
        state = p.attempt > 1 ? "unclaimed" : nullptr;
        break;
    }
    if (state == nullptr) continue;
    std::printf("  point %4zu  %-9s  attempt %llu%s%s\n", p.index, state,
                static_cast<unsigned long long>(p.attempt), p.owner.empty() ? "" : "  owner ",
                p.owner.c_str());
  }
  return 0;
}

int cmd_status(const Options& opt) {
  const std::vector<exp::ScenarioSpec> grid = exp::make_preset(opt.preset);
  std::printf("preset %s: %zu points\n", opt.preset.c_str(), grid.size());

  if (opt.leases) {
    const int rc = print_lease_report(opt, grid);
    if (rc != 0) return rc;
  }

  if (!opt.cache_dir.empty()) {
    exp::ResultCache cache{opt.cache_dir};
    for (const exp::ScenarioSpec& spec : grid) (void)cache.lookup(spec);
    const exp::CacheStats cs = cache.stats();
    std::printf("cache %s: %llu cached, %llu missing, %llu stale\n", cache.dir().c_str(),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.stale));
  }

  if (opt.stages) {
    if (opt.telemetry_dir.empty()) {
      std::fprintf(stderr, "sweepctl: status --stages needs --telemetry DIR\n");
      return 2;
    }
    print_stage_breakdown(opt.telemetry_dir);
  }

  if (!opt.inputs.empty()) {
    std::vector<bool> covered(grid.size(), false);
    // Straggler accounting from the recorded per-point wall times: which
    // shard carried the most wall-clock, and which points dominate it.
    struct ShardWall {
      std::string path;
      std::int64_t total_us{0};
    };
    std::vector<ShardWall> shard_walls;
    std::vector<std::pair<std::int64_t, std::string>> point_walls;  // (us, key)
    // Cache-hit vs fresh-compute wall split, over all shard files: cached
    // points' wall is the cache round-trip, not simulation, so straggler
    // analysis should not blame a warm shard for being "fast".
    std::size_t cached_points = 0;
    std::int64_t cached_wall_us = 0;
    std::int64_t compute_wall_us = 0;
    // Per-scenario deadline accounting, summed over each point counted once
    // (the scenario is the first '/'-segment of the point key).
    struct DeadlineTally {
      std::uint64_t met{0};
      std::uint64_t missed{0};
    };
    std::map<std::string, DeadlineTally> deadline_tallies;
    // Per-hop split over multi-rack points (schema-4 reports): delivered
    // bytes by hop class and the mean core-link utilisation.
    struct HopTally {
      std::int64_t intra_bytes{0};
      std::int64_t cross_bytes{0};
      double util_sum{0.0};
      std::size_t points{0};
    };
    std::map<std::string, HopTally> hop_tallies;
    for (const std::string& path : opt.inputs) {
      std::size_t points = 0;
      std::size_t matching = 0;
      std::size_t mismatched = 0;
      std::int64_t wall_us = 0;
      // Staged per file and committed only after the whole file parses, and
      // only for points merge would accept — a truncated or stale shard
      // must not smuggle bogus keys into the straggler report.
      std::vector<std::pair<std::int64_t, std::string>> file_walls;
      try {
        const stats::JsonValue doc = stats::parse_json(read_file(path));
        for (const stats::JsonValue& entry : doc.at("points").items()) {
          ++points;
          const std::uint64_t index = entry.at("index").as_u64();
          // Count a point as covered only if merge would accept it: the
          // stored spec hash must match this grid's spec at that index,
          // otherwise status would claim coverage merge then rejects
          // (stale shard files from an edited preset).
          if (index >= grid.size() ||
              entry.at("spec_hash").as_str() != exp::spec_hash_hex(grid[index])) {
            ++mismatched;
            continue;
          }
          bool from_cache = false;
          if (const stats::JsonValue* cached = entry.find("cached")) {
            from_cache = cached->as_bool();
          }
          if (const stats::JsonValue* wall = entry.find("wall_us")) {
            wall_us += wall->as_i64();
            if (from_cache) {
              ++cached_points;
              cached_wall_us += wall->as_i64();
            } else {
              compute_wall_us += wall->as_i64();
              // Only fresh compute competes for "slowest point" — a cache
              // round-trip's microseconds say nothing about the simulation.
              file_walls.emplace_back(wall->as_i64(), entry.at("key").as_str());
            }
          }
          if (!covered[index]) {
            covered[index] = true;
            ++matching;
            // Deadline metrics, when this shard's schema carries them
            // (tolerant find: older shard files simply print no SLO line).
            if (const stats::JsonValue* report = entry.find("report")) {
              const stats::JsonValue* met = report->find("deadline_flows_met");
              const stats::JsonValue* missed = report->find("deadline_flows_missed");
              if (met != nullptr && missed != nullptr) {
                DeadlineTally& t = deadline_tallies[grid[index].scenario];
                t.met += met->as_u64();
                t.missed += missed->as_u64();
              }
              // Per-hop metrics, when present (tolerant find: pre-topology
              // shard files simply print no per-hop line) and meaningful
              // (multi-rack points only — a single switch is all intra).
              if (grid[index].topology.multi_rack()) {
                const stats::JsonValue* intra = report->find("intra_rack_bytes");
                const stats::JsonValue* cross = report->find("cross_rack_bytes");
                const stats::JsonValue* util = report->find("core_utilization");
                if (intra != nullptr && cross != nullptr && util != nullptr) {
                  HopTally& h = hop_tallies[grid[index].scenario];
                  h.intra_bytes += intra->as_i64();
                  h.cross_bytes += cross->as_i64();
                  h.util_sum += util->as_f64();
                  ++h.points;
                }
              }
            }
          }
        }
        point_walls.insert(point_walls.end(), file_walls.begin(), file_walls.end());
        if (mismatched != 0) {
          std::printf("shard %s: %zu points (%zu new, %zu stale — merge would reject), "
                      "wall %.1f ms\n",
                      path.c_str(), points, matching, mismatched,
                      static_cast<double>(wall_us) / 1e3);
        } else {
          std::printf("shard %s: %zu points (%zu new), wall %.1f ms\n", path.c_str(), points,
                      matching, static_cast<double>(wall_us) / 1e3);
        }
        shard_walls.push_back({path, wall_us});
      } catch (const std::invalid_argument& e) {
        std::printf("shard %s: unreadable (%s)\n", path.c_str(), e.what());
      }
    }
    std::size_t missing = 0;
    for (const bool c : covered) missing += c ? 0 : 1;
    std::printf("coverage: %zu/%zu points, %zu missing\n", grid.size() - missing, grid.size(),
                missing);
    if (cached_points != 0) {
      std::printf("cache hits: %zu points served from cache (%.1f ms round-trips; "
                  "compute wall %.1f ms)\n",
                  cached_points, static_cast<double>(cached_wall_us) / 1e3,
                  static_cast<double>(compute_wall_us) / 1e3);
    }

    // Per-hop summary for the topology grids: how delivered bytes split
    // between rack-local and core-crossing hops, and how loaded the core
    // links ran (mean over the scenario's multi-rack points).
    for (const auto& [scenario, h] : hop_tallies) {
      const std::int64_t total = h.intra_bytes + h.cross_bytes;
      const double cross_share =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(h.cross_bytes) / static_cast<double>(total);
      std::printf("per-hop %s: intra-rack %.1f MB, cross-rack %.1f MB (%.1f%% crossed), "
                  "core utilization %.3f (%zu points)\n",
                  scenario.c_str(), static_cast<double>(h.intra_bytes) / 1e6,
                  static_cast<double>(h.cross_bytes) / 1e6, cross_share,
                  h.util_sum / static_cast<double>(h.points), h.points);
    }

    // SLO summary: deadline-miss ratio per scenario, for shards whose
    // reports track deadlines and actually saw deadline-bearing flows.
    for (const auto& [scenario, tally] : deadline_tallies) {
      const std::uint64_t total = tally.met + tally.missed;
      if (total == 0) continue;
      std::printf("deadline %s: miss ratio %.4f (%llu of %llu flows missed)\n", scenario.c_str(),
                  static_cast<double>(tally.missed) / static_cast<double>(total),
                  static_cast<unsigned long long>(tally.missed),
                  static_cast<unsigned long long>(total));
    }

    // The straggler report the merge step wants before it blocks on a slow
    // host: the wall-time spread across shards and the slowest points.
    if (shard_walls.size() > 1) {
      const auto [min_it, max_it] =
          std::minmax_element(shard_walls.begin(), shard_walls.end(),
                              [](const ShardWall& a, const ShardWall& b) {
                                return a.total_us < b.total_us;
                              });
      std::printf("stragglers: slowest shard %s (%.1f ms) vs fastest %s (%.1f ms)",
                  max_it->path.c_str(), static_cast<double>(max_it->total_us) / 1e3,
                  min_it->path.c_str(), static_cast<double>(min_it->total_us) / 1e3);
      if (min_it->total_us > 0) {
        std::printf(", %.2fx imbalance",
                    static_cast<double>(max_it->total_us) /
                        static_cast<double>(min_it->total_us));
      }
      std::printf("\n");
    }
    if (!point_walls.empty()) {
      std::sort(point_walls.begin(), point_walls.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const std::size_t top = std::min<std::size_t>(point_walls.size(), 5);
      std::printf("slowest points:\n");
      for (std::size_t i = 0; i < top; ++i) {
        std::printf("  %10.1f ms  %s\n", static_cast<double>(point_walls[i].first) / 1e3,
                    point_walls[i].second.c_str());
      }
    }
  }
  return 0;
}

int cmd_trace(const Options& opt) {
  if (opt.scenario.empty()) return usage("trace: --scenario is required");
  if (opt.out_path.empty()) return usage("trace: --out is required");

  exp::ScenarioSpec spec = exp::make_scenario(opt.scenario, opt.ports, opt.load, opt.seed);
  if (!opt.policies.empty()) spec.with_policies(core::PolicyStack::parse(opt.policies));
  if (opt.racks > 1) {
    spec.with_racks(opt.racks).with_oversubscription(opt.oversub).with_locality(opt.locality);
  }

  obs::TelemetryConfig tc;
  tc.span_log_capacity = 1 << 16;  // keep individual spans for the host track

  if (spec.topology.multi_rack()) {
    // Fat-tree: the sim-event track comes from ToR 0 (every rack runs the
    // same policy stack, so one switch is representative); the per-tier
    // gauge series render as one counter track per ToR plus the core.
    std::unique_ptr<topo::FatTree> ft = exp::materialize_fat_tree(spec);
    sim::TraceRecorder& trace = ft->rack(0).trace();
    trace.set_capacity(1 << 20, sim::TraceOverflow::kDropOldest);
    trace.enable();
    ft->enable_telemetry(tc);
    (void)ft->run(spec.duration, spec.warmup);

    write_file(opt.out_path,
               obs::chrome_trace_json(trace, ft->telemetry()->registry(), ft->tier_series()));
    std::printf("trace %s: %zu events kept (%llu dropped), %zu spans kept (%llu dropped), "
                "%zu tier tracks -> %s\n",
                spec.key().c_str(), trace.events().size(),
                static_cast<unsigned long long>(trace.dropped()),
                ft->telemetry()->registry().spans().size(),
                static_cast<unsigned long long>(ft->telemetry()->registry().spans_dropped()),
                ft->tier_series().size(), opt.out_path.c_str());
    std::printf("load %s in ui.perfetto.dev or chrome://tracing\n", opt.out_path.c_str());
    return 0;
  }

  std::unique_ptr<core::HybridSwitchFramework> fw = exp::materialize(spec);
  // Bounded tracing: drop-oldest keeps the trace's tail contiguous, so
  // start/done pairs still fold into duration slices after overflow.
  fw->trace().set_capacity(1 << 20, sim::TraceOverflow::kDropOldest);
  fw->trace().enable();
  fw->enable_telemetry(tc);
  (void)fw->run(spec.duration, spec.warmup);

  write_file(opt.out_path, obs::chrome_trace_json(fw->trace(), fw->telemetry()->registry()));
  std::printf("trace %s: %zu events kept (%llu dropped), %zu spans kept (%llu dropped) -> %s\n",
              spec.key().c_str(), fw->trace().events().size(),
              static_cast<unsigned long long>(fw->trace().dropped()),
              fw->telemetry()->registry().spans().size(),
              static_cast<unsigned long long>(fw->telemetry()->registry().spans_dropped()),
              opt.out_path.c_str());
  std::printf("load %s in ui.perfetto.dev or chrome://tracing\n", opt.out_path.c_str());
  return 0;
}

int cmd_gc(const Options& opt) {
  if (opt.cache_dir.empty()) return usage("gc: --cache is required");
  if (opt.keep_days < 0.0) return usage("gc: --keep-days is required");
  exp::ResultCache cache{opt.cache_dir};
  const exp::GcStats gcs = cache.gc(opt.keep_days);
  std::printf("cache %s: removed %llu entries older than %g days, kept %llu\n",
              cache.dir().c_str(), static_cast<unsigned long long>(gcs.removed), opt.keep_days,
              static_cast<unsigned long long>(gcs.kept));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  try {
    if (opt.command == "presets") return cmd_presets(opt);
    if (opt.command == "gc") return cmd_gc(opt);
    if (opt.command == "trace") return cmd_trace(opt);
    if (opt.preset.empty()) return usage("--preset is required");
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "merge") return cmd_merge(opt);
    if (opt.command == "status") return cmd_status(opt);
    return usage(("unknown command '" + opt.command + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweepctl: %s\n", e.what());
    return 1;
  }
}
