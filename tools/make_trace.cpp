// make_trace — synthesize a CSV flow trace for the trace-replay workload.
//
// Emits the format traffic/trace_replay.hpp parses:
//
//   start_us,src,dst,bytes,priority[,deadline_us]
//
// Flows arrive as a Poisson process over the requested span; sizes come
// from the usual datacenter mice/elephant mixture; a hotspot fraction of
// destinations concentrates on port 0; elephants are marked throughput
// (priority 1) and a small slice of mice latency-sensitive (priority 2).
// With --slo-rate-gbps=R the trace gains the deadline_us column: every
// non-elephant flow must complete within its transmission time at R Gbps
// plus --slo-slack-us; elephants carry deadline 0 (throughput traffic has
// no completion SLO), exercising the mixed deadline/no-deadline path.
// Everything is driven by one seed, so a regenerated trace is bit-identical
// — examples/example_trace.csv in the repository was produced by
//
//   $ make_trace --out examples/example_trace.csv
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/units.hpp"
#include "util/file_io.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;

struct Options {
  std::string out_path;
  std::uint32_t ports{16};
  std::uint64_t flows{400};
  double span_us{1000.0};
  double hotspot{0.2};   ///< fraction of flows destined to port 0
  double elephants{0.1}; ///< fraction of flows drawn from the elephant tail
  double slo_rate_gbps{0.0};  ///< > 0 emits the deadline_us column
  double slo_slack_us{50.0};  ///< scheduling slack added to each SLO
  std::uint64_t seed{7};
};

int usage() {
  std::fprintf(stderr,
               "usage: make_trace --out=PATH [--ports=N] [--flows=N] [--span-us=S]\n"
               "                  [--hotspot=F] [--elephants=F] [--slo-rate-gbps=R]\n"
               "                  [--slo-slack-us=S] [--seed=N]\n");
  return 2;
}

using util::parse_number;

// Whole-token, in-range numeric parses: "--flows=40x" is an error, not 40.
bool parse(int argc, char** argv, Options& opt) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    std::uint64_t u = 0;
    if (key == "--out") {
      opt.out_path = val;
    } else if (key == "--ports" && parse_number(val, u) && u >= 2 && u <= 1u << 20) {
      opt.ports = static_cast<std::uint32_t>(u);
    } else if (key == "--flows" && parse_number(val, u) && u >= 1) {
      opt.flows = u;
    } else if (key == "--span-us" && parse_number(val, opt.span_us) && opt.span_us > 0.0) {
      // parsed in the condition
    } else if (key == "--hotspot" && parse_number(val, opt.hotspot) && opt.hotspot >= 0.0 &&
               opt.hotspot <= 1.0) {
      // parsed in the condition
    } else if (key == "--elephants" && parse_number(val, opt.elephants) && opt.elephants >= 0.0 &&
               opt.elephants <= 1.0) {
      // parsed in the condition
    } else if (key == "--slo-rate-gbps" && parse_number(val, opt.slo_rate_gbps) &&
               opt.slo_rate_gbps >= 0.0) {
      // parsed in the condition
    } else if (key == "--slo-slack-us" && parse_number(val, opt.slo_slack_us) &&
               opt.slo_slack_us >= 0.0) {
      // parsed in the condition
    } else if (key == "--seed" && parse_number(val, opt.seed)) {
      // parsed in the condition
    } else {
      return false;
    }
  }
  return !opt.out_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();

  sim::Rng rng{opt.seed};
  const bool with_deadlines = opt.slo_rate_gbps > 0.0;
  std::string csv{with_deadlines ? "start_us,src,dst,bytes,priority,deadline_us\n"
                                 : "start_us,src,dst,bytes,priority\n"};

  double now_us = 0.0;
  const double mean_gap_us = opt.span_us / static_cast<double>(opt.flows);
  std::int64_t total_bytes = 0;
  for (std::uint64_t i = 0; i < opt.flows; ++i) {
    now_us += rng.exponential(mean_gap_us);

    const auto src = static_cast<std::uint32_t>(rng.next_below(opt.ports));
    std::uint32_t dst =
        rng.bernoulli(opt.hotspot) ? 0 : static_cast<std::uint32_t>(rng.next_below(opt.ports));
    if (dst == src) dst = (dst + 1) % opt.ports;

    const bool elephant = rng.bernoulli(opt.elephants);
    std::int64_t bytes;
    int priority;
    if (elephant) {
      // Clamp in double space: the Pareto tail can exceed int64 range.
      bytes = static_cast<std::int64_t>(std::min(rng.pareto(1.2, 1e6), 64e6));
      priority = 1;
    } else {
      bytes = std::max<std::int64_t>(sim::kMinFrameBytes,
                                     static_cast<std::int64_t>(rng.exponential(20'000.0)));
      priority = rng.bernoulli(0.05) ? 2 : 0;
    }
    total_bytes += bytes;

    char line[128];
    if (with_deadlines) {
      const double deadline_us =
          priority == 1 ? 0.0
                        : static_cast<double>(bytes) * 8.0 / (opt.slo_rate_gbps * 1e3) +
                              opt.slo_slack_us;
      std::snprintf(line, sizeof line, "%.3f,%u,%u,%lld,%d,%.3f\n", now_us, src, dst,
                    static_cast<long long>(bytes), priority, deadline_us);
    } else {
      std::snprintf(line, sizeof line, "%.3f,%u,%u,%lld,%d\n", now_us, src, dst,
                    static_cast<long long>(bytes), priority);
    }
    csv += line;
  }

  try {
    util::write_file(opt.out_path, csv);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "make_trace: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s: %llu flows, %u ports, %.1f us span, %.1f MB\n", opt.out_path.c_str(),
              static_cast<unsigned long long>(opt.flows), opt.ports, now_us,
              static_cast<double>(total_bytes) / 1e6);
  return 0;
}
