// pcap2trace — convert a packet capture into the flow-trace CSV the
// trace-replay workload consumes (traffic/trace_replay.hpp), with no
// libpcap dependency:
//
//   $ pcap2trace --in=capture.pcap --out=examples/my_trace.csv
//   $ sweepctl run --preset trace ...        # after pointing trace_path at it
//
// Reads classic pcap (all four magics) and pcapng (SHB/IDB/EPB), decodes
// Ethernet (VLAN-tagged too) and raw-IPv4 link layers, folds packets into
// flows by 5-tuple with an idle-gap split, maps IP addresses to dense
// trace port ids, and emits time-sorted `start_us,src,dst,bytes,priority`
// rows (plus `deadline_us` with --slo-rate-gbps) — the exact format
// FlowTrace::parse validates.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "traffic/pcap.hpp"
#include "traffic/trace_replay.hpp"
#include "util/file_io.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;

struct Options {
  std::string in_path;
  std::string out_path;
  traffic::TraceOptions trace{};
};

int usage() {
  std::fprintf(stderr,
               "usage: pcap2trace --in=CAPTURE --out=TRACE.csv\n"
               "                  [--flow-gap-us=F] [--elephant-bytes=N]\n"
               "                  [--slo-rate-gbps=R] [--slo-slack-us=S]\n"
               "\n"
               "  --flow-gap-us     idle time on a 5-tuple that starts a new flow\n"
               "                    (default 1000)\n"
               "  --elephant-bytes  flows >= this size are marked priority 1;\n"
               "                    UDP flows are 2, the rest 0 (default 1000000)\n"
               "  --slo-rate-gbps   > 0 adds the deadline_us column: non-elephant\n"
               "                    flows get a completion SLO of their transmission\n"
               "                    time at this rate plus --slo-slack-us (default 50)\n");
  return 2;
}

// Whole-token, in-range numeric parses: "--flow-gap-us=5x" is an error.
bool parse(int argc, char** argv, Options& opt) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    if (key == "--in") {
      opt.in_path = val;
    } else if (key == "--out") {
      opt.out_path = val;
    } else if (key == "--flow-gap-us" && util::parse_number(val, opt.trace.flow_gap_us) &&
               opt.trace.flow_gap_us > 0.0) {
      // parsed in the condition
    } else if (key == "--elephant-bytes" && util::parse_number(val, opt.trace.elephant_bytes) &&
               opt.trace.elephant_bytes > 0) {
      // parsed in the condition
    } else if (key == "--slo-rate-gbps" && util::parse_number(val, opt.trace.slo_rate_gbps) &&
               opt.trace.slo_rate_gbps >= 0.0) {
      // parsed in the condition
    } else if (key == "--slo-slack-us" && util::parse_number(val, opt.trace.slo_slack_us) &&
               opt.trace.slo_slack_us >= 0.0) {
      // parsed in the condition
    } else {
      return false;
    }
  }
  return !opt.in_path.empty() && !opt.out_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();

  const std::optional<std::string> raw = util::read_file(opt.in_path);
  if (!raw) {
    std::fprintf(stderr, "pcap2trace: cannot read %s\n", opt.in_path.c_str());
    return 1;
  }

  try {
    const traffic::PcapCapture capture = traffic::parse_pcap(*raw);
    const std::string csv = traffic::trace_from_pcap(capture, opt.trace);
    // Round-trip through the strict trace parser before writing: the tool
    // must never emit a file the replay workload then rejects.
    const traffic::FlowTrace trace = traffic::FlowTrace::parse(csv);
    util::write_file(opt.out_path, csv);
    std::printf("wrote %s: %zu packets (%llu skipped) -> %zu flows, %u trace ports, "
                "%.1f us span, %.1f MB\n",
                opt.out_path.c_str(), capture.packets.size(),
                static_cast<unsigned long long>(capture.skipped), trace.records.size(),
                trace.max_port + 1, static_cast<double>(trace.span.ps()) / 1e6,
                static_cast<double>(trace.total_bytes) / 1e6);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcap2trace: %s\n", e.what());
    return 1;
  }
}
