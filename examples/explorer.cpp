// explorer — command-line experiment runner for the framework.
//
//   $ ./examples/explorer --ports=16 --scheduler=islip:4 --discipline=slotted
//         --load=0.7 --pattern=uniform --duration-ms=20
//   $ ./examples/explorer --discipline=hybrid --circuit=solstice
//         --pattern=onoff --reconfig-us=10 --placement=host
//
// Every knob of the public API is reachable from flags, so parameter sweeps
// can be scripted without writing C++ — the "rapid prototyping and
// evaluation" loop of the paper, as a tool.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/framework.hpp"
#include "topo/testbed.hpp"

namespace {

using namespace xdrs;
using sim::Time;

struct Options {
  std::uint32_t ports{8};
  std::string scheduler{"islip:2"};   // slotted matcher spec
  std::string circuit{"solstice"};    // hybrid circuit scheduler
  std::string discipline{"hybrid"};   // hybrid | slotted
  std::string placement{"tor"};       // tor | host
  std::string timing{"hardware"};     // hardware | software | distributed
  std::string pattern{"uniform"};     // uniform|hotspot|zipf|permutation|onoff|flows|shuffle|incast
  double load{0.5};
  double skew{0.5};
  std::int64_t reconfig_us{1};
  std::int64_t epoch_us{100};
  std::int64_t slot_ns{12'500};
  std::int64_t duration_ms{10};
  std::int64_t warmup_ms{2};
  std::uint64_t seed{7};
  bool voip{false};
  bool help{false};
};

void usage() {
  std::puts(
      "explorer — run one hybrid-switch scheduling experiment\n"
      "  --ports=N           switch size (default 8)\n"
      "  --discipline=D      hybrid | slotted (default hybrid)\n"
      "  --scheduler=S       slotted matcher spec: rrm[:i] islip[:i] pim[:i] ilqf\n"
      "                      maxweight maxsize rotor wavefront serena\n"
      "  --circuit=C         hybrid planner spec: solstice[:amort] | cthrough |\n"
      "                      tms[:k] | bvn[:slots]\n"
      "  --placement=P       tor | host (Figure 1 regimes)\n"
      "  --timing=T          timing spec: hardware | hw:500MHz | software |\n"
      "                      distributed | ideal\n"
      "  --pattern=W         uniform|hotspot|zipf|permutation|onoff|flows|shuffle|incast\n"
      "  --load=F            per-port offered load in [0,1]\n"
      "  --skew=F            hotspot fraction / zipf exponent\n"
      "  --reconfig-us=N     OCS dark time\n"
      "  --epoch-us=N        hybrid replanning period\n"
      "  --slot-ns=N         slotted slot length\n"
      "  --duration-ms=N     measured simulated time\n"
      "  --warmup-ms=N       unmeasured warm-up\n"
      "  --voip              add latency-sensitive CBR streams\n"
      "  --seed=N            workload seed\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--help" || key == "-h") {
      opt.help = true;
    } else if (key == "--ports") {
      opt.ports = static_cast<std::uint32_t>(std::stoul(val));
    } else if (key == "--scheduler") {
      opt.scheduler = val;
    } else if (key == "--circuit") {
      opt.circuit = val;
    } else if (key == "--discipline") {
      opt.discipline = val;
    } else if (key == "--placement") {
      opt.placement = val;
    } else if (key == "--timing") {
      opt.timing = val;
    } else if (key == "--pattern") {
      opt.pattern = val;
    } else if (key == "--load") {
      opt.load = std::stod(val);
    } else if (key == "--skew") {
      opt.skew = std::stod(val);
    } else if (key == "--reconfig-us") {
      opt.reconfig_us = std::stoll(val);
    } else if (key == "--epoch-us") {
      opt.epoch_us = std::stoll(val);
    } else if (key == "--slot-ns") {
      opt.slot_ns = std::stoll(val);
    } else if (key == "--duration-ms") {
      opt.duration_ms = std::stoll(val);
    } else if (key == "--warmup-ms") {
      opt.warmup_ms = std::stoll(val);
    } else if (key == "--seed") {
      opt.seed = std::stoull(val);
    } else if (key == "--voip") {
      opt.voip = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.help) {
    usage();
    return 0;
  }

  core::FrameworkConfig cfg;
  cfg.ports = opt.ports;
  cfg.ocs_reconfig = Time::microseconds(opt.reconfig_us);
  cfg.epoch = Time::microseconds(opt.epoch_us);
  cfg.slot_time = Time::nanoseconds(opt.slot_ns);
  cfg.min_circuit_hold = Time::microseconds(std::max<std::int64_t>(opt.epoch_us / 10, 1));
  cfg.discipline = opt.discipline == "slotted" ? core::SchedulingDiscipline::kSlotted
                                               : core::SchedulingDiscipline::kHybridEpoch;
  cfg.placement = opt.placement == "host" ? core::BufferPlacement::kHost
                                          : core::BufferPlacement::kToRSwitch;
  cfg.seed = opt.seed;

  core::HybridSwitchFramework fw{cfg};
  // Every flag is a PolicyRegistry spec, so user-registered algorithms work
  // here without touching the explorer.
  core::PolicyStack stack;
  stack.matcher = opt.scheduler;
  stack.circuit = opt.circuit;
  stack.timing = opt.timing;
  try {
    fw.set_policies(stack);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::map<std::string, topo::WorkloadSpec::Kind> kinds{
      {"uniform", topo::WorkloadSpec::Kind::kPoissonUniform},
      {"hotspot", topo::WorkloadSpec::Kind::kPoissonHotspot},
      {"zipf", topo::WorkloadSpec::Kind::kPoissonZipf},
      {"permutation", topo::WorkloadSpec::Kind::kPermutation},
      {"onoff", topo::WorkloadSpec::Kind::kOnOffBursts},
      {"flows", topo::WorkloadSpec::Kind::kFlows},
      {"shuffle", topo::WorkloadSpec::Kind::kShuffle},
      {"incast", topo::WorkloadSpec::Kind::kIncast},
  };
  const auto kind = kinds.find(opt.pattern);
  if (kind == kinds.end()) {
    std::fprintf(stderr, "unknown pattern: %s\n", opt.pattern.c_str());
    return 2;
  }
  topo::WorkloadSpec spec;
  spec.kind = kind->second;
  spec.load = opt.load;
  spec.skew = opt.skew;
  spec.seed = opt.seed;
  topo::attach_workload(fw, spec);
  if (opt.voip) topo::attach_voip(fw, std::min(opt.ports / 2, 8u), Time::microseconds(20), 200);

  const core::RunReport r =
      fw.run(Time::milliseconds(opt.duration_ms), Time::milliseconds(opt.warmup_ms));

  std::printf("config     : %u ports, %s, %s, %s timing, pattern=%s load=%.2f\n", cfg.ports,
              to_string(cfg.discipline), to_string(cfg.placement), opt.timing.c_str(),
              opt.pattern.c_str(), opt.load);
  std::printf("report     : %s\n", r.summary().c_str());
  std::printf("throughput : %.3f of capacity (service %.3f)\n",
              r.throughput_fraction(cfg.link_rate, cfg.ports),
              r.service_fraction(cfg.link_rate, cfg.ports));
  std::printf("latency    : p50=%s p99=%s\n", r.latency.quantile_time(0.5).to_string().c_str(),
              r.latency.quantile_time(0.99).to_string().c_str());
  if (r.latency_sensitive.count() > 0) {
    std::printf("voip       : p99=%s jitter=%.2fus\n",
                r.latency_sensitive.quantile_time(0.99).to_string().c_str(),
                r.jitter_us.mean());
  }
  std::printf("buffering  : switch peak=%s worst host=%s\n",
              sim::format_bytes(static_cast<double>(r.peak_switch_buffer_bytes)).c_str(),
              sim::format_bytes(static_cast<double>(r.peak_host_buffer_bytes)).c_str());
  std::printf("ocs        : duty=%.3f reconfigs=%llu dark=%s\n", r.ocs_duty_cycle,
              static_cast<unsigned long long>(r.reconfigurations),
              r.dark_time.to_string().c_str());
  return 0;
}
