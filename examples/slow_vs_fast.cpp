// Slow vs fast scheduling, end to end — Figure 1 as an executable story.
//
// The same rack, the same traffic, two control planes:
//   SLOW: software scheduler (ms decision loop), host-buffered VOQs,
//         grants over the network, host clock skew, 1 ms optical retune;
//   FAST: hardware scheduler (ns pipeline), ToR-buffered VOQs, on-chip
//         grants, 1 us retune.
// Watch where the buffering lands and what happens to latency.
#include <cstdio>
#include <memory>

#include "analysis/buffering.hpp"
#include "core/framework.hpp"
#include "schedulers/solstice.hpp"
#include "stats/table.hpp"
#include "topo/testbed.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

core::RunReport run_plane(bool fast) {
  core::FrameworkConfig c;
  c.ports = 8;
  c.link_rate = sim::DataRate::gbps(10);
  c.ocs_reconfig = fast ? sim::Time::microseconds(1) : sim::Time::milliseconds(1);
  c.epoch = fast ? sim::Time::microseconds(100) : sim::Time::milliseconds(10);
  c.min_circuit_hold = fast ? sim::Time::microseconds(10) : sim::Time::milliseconds(2);
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.placement = fast ? core::BufferPlacement::kToRSwitch : core::BufferPlacement::kHost;
  if (!fast) {
    c.sync.max_skew = 2_us;
    c.sync.guard_band = 5_us;
  }

  core::HybridSwitchFramework fw{c};
  fw.set_estimator(std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports));
  if (fast) {
    fw.set_timing_model(std::make_unique<control::HardwareSchedulerTimingModel>());
  } else {
    fw.set_timing_model(std::make_unique<control::SoftwareSchedulerTimingModel>());
  }
  schedulers::SolsticeConfig sc;
  sc.reconfig_cost_bytes = core::reconfig_cost_bytes(c);
  sc.max_slots = c.ports;
  fw.set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 80_us;
  spec.mean_off = 160_us;
  spec.seed = 11;
  topo::attach_workload(fw, spec);
  topo::attach_voip(fw, 4, 20_us, 200);

  return fw.run(fast ? 20_ms : 60_ms, fast ? 4_ms : 12_ms);
}

}  // namespace

int main() {
  std::printf("Slow (software, host-buffered, ms optics) vs fast (hardware, ToR-buffered,\n"
              "us optics) scheduling on the same 8x10G rack — Figure 1, lived.\n\n");

  stats::Table t{{"metric", "SLOW plane", "FAST plane"}};
  const core::RunReport slow = run_plane(false);
  const core::RunReport fast = run_plane(true);

  const auto add = [&t](const char* metric, const std::string& s, const std::string& f) {
    t.row().cell(metric).cell(s).cell(f);
  };
  add("mean scheduler decision", slow.mean_decision_latency.to_string(),
      fast.mean_decision_latency.to_string());
  add("peak buffer at worst host",
      sim::format_bytes(static_cast<double>(slow.peak_host_buffer_bytes)),
      sim::format_bytes(static_cast<double>(fast.peak_host_buffer_bytes)));
  add("peak buffer across switch VOQs",
      sim::format_bytes(static_cast<double>(slow.peak_switch_buffer_bytes)),
      sim::format_bytes(static_cast<double>(fast.peak_switch_buffer_bytes)));
  add("all-traffic p99 latency", slow.latency.quantile_time(0.99).to_string(),
      fast.latency.quantile_time(0.99).to_string());
  add("VOIP p99 latency", slow.latency_sensitive.quantile_time(0.99).to_string(),
      fast.latency_sensitive.quantile_time(0.99).to_string());
  add("delivery", std::to_string(slow.delivery_ratio()).substr(0, 5),
      std::to_string(fast.delivery_ratio()).substr(0, 5));
  std::printf("%s\n", t.markdown().c_str());

  // Tie back to the closed-form model at full scale.
  analysis::BufferingScenario s;
  s.ports = 64;
  s.port_rate = sim::DataRate::gbps(10);
  s.switching_time = 1_ms;
  s.control_loop_latency = 2_ms;
  const auto slow_req = analysis::compute_buffering(s);
  s.switching_time = 1_us;
  s.control_loop_latency = sim::Time::nanoseconds(200);
  const auto fast_req = analysis::compute_buffering(s);
  std::printf("At the paper's 64x64/10G scale the closed-form requirement is %s (slow) vs %s\n"
              "(fast): the slow plane cannot fit a ToR and must buffer at hosts — Figure 1.\n",
              sim::format_bytes(static_cast<double>(slow_req.total_bytes)).c_str(),
              sim::format_bytes(static_cast<double>(fast_req.total_bytes)).c_str());
  return 0;
}
