// Slow vs fast scheduling, end to end — Figure 1 as an executable story.
//
// The same rack, the same traffic, two control planes:
//   SLOW: software scheduler (ms decision loop), host-buffered VOQs,
//         grants over the network, host clock skew, 1 ms optical retune;
//   FAST: hardware scheduler (ns pipeline), ToR-buffered VOQs, on-chip
//         grants, 1 us retune.
// Watch where the buffering lands and what happens to latency.
//
// Each plane is one declarative ScenarioSpec; the two-point "grid" runs
// through the same ExperimentRunner the parameter sweeps use.
#include <cstdio>

#include "analysis/buffering.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

exp::ScenarioSpec plane(bool fast) {
  exp::ScenarioSpec s;
  s.scenario = "figure1";
  s.label = fast ? "fast" : "slow";
  s.config.ports = 8;
  s.config.link_rate = sim::DataRate::gbps(10);
  s.config.ocs_reconfig = fast ? 1_us : 1_ms;
  s.config.epoch = fast ? 100_us : 10_ms;
  s.config.min_circuit_hold = fast ? 10_us : 2_ms;
  s.config.discipline = core::SchedulingDiscipline::kHybridEpoch;
  s.config.placement = fast ? core::BufferPlacement::kToRSwitch : core::BufferPlacement::kHost;
  if (!fast) {
    s.config.sync.max_skew = 2_us;
    s.config.sync.guard_band = 5_us;
  }
  s.with_timing(fast ? "hardware" : "software");

  topo::WorkloadSpec bursts;
  bursts.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  bursts.mean_on = 80_us;
  bursts.mean_off = 160_us;
  bursts.seed = 11;
  s.workloads.push_back(bursts);
  s.voip_pairs = 4;

  return s.with_window(fast ? 20_ms : 60_ms, fast ? 4_ms : 12_ms);
}

}  // namespace

int main() {
  std::printf("Slow (software, host-buffered, ms optics) vs fast (hardware, ToR-buffered,\n"
              "us optics) scheduling on the same 8x10G rack — Figure 1, lived.\n\n");

  const exp::SweepResult res = exp::ExperimentRunner{}.run({plane(false), plane(true)});
  const core::RunReport& slow = res.points[0].report;
  const core::RunReport& fast = res.points[1].report;

  stats::Table t{{"metric", "SLOW plane", "FAST plane"}};
  const auto add = [&t](const char* metric, const std::string& s, const std::string& f) {
    t.row().cell(metric).cell(s).cell(f);
  };
  add("mean scheduler decision", slow.mean_decision_latency.to_string(),
      fast.mean_decision_latency.to_string());
  add("peak buffer at worst host",
      sim::format_bytes(static_cast<double>(slow.peak_host_buffer_bytes)),
      sim::format_bytes(static_cast<double>(fast.peak_host_buffer_bytes)));
  add("peak buffer across switch VOQs",
      sim::format_bytes(static_cast<double>(slow.peak_switch_buffer_bytes)),
      sim::format_bytes(static_cast<double>(fast.peak_switch_buffer_bytes)));
  add("all-traffic p99 latency", slow.latency.quantile_time(0.99).to_string(),
      fast.latency.quantile_time(0.99).to_string());
  add("VOIP p99 latency", slow.latency_sensitive.quantile_time(0.99).to_string(),
      fast.latency_sensitive.quantile_time(0.99).to_string());
  add("delivery", std::to_string(slow.delivery_ratio()).substr(0, 5),
      std::to_string(fast.delivery_ratio()).substr(0, 5));
  std::printf("%s\n", t.markdown().c_str());

  // Tie back to the closed-form model at full scale.
  analysis::BufferingScenario s;
  s.ports = 64;
  s.port_rate = sim::DataRate::gbps(10);
  s.switching_time = 1_ms;
  s.control_loop_latency = 2_ms;
  const auto slow_req = analysis::compute_buffering(s);
  s.switching_time = 1_us;
  s.control_loop_latency = sim::Time::nanoseconds(200);
  const auto fast_req = analysis::compute_buffering(s);
  std::printf("At the paper's 64x64/10G scale the closed-form requirement is %s (slow) vs %s\n"
              "(fast): the slow plane cannot fit a ToR and must buffer at hosts — Figure 1.\n",
              sim::format_bytes(static_cast<double>(slow_req.total_bytes)).c_str(),
              sim::format_bytes(static_cast<double>(fast_req.total_bytes)).c_str());
  return 0;
}
