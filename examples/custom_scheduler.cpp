// Custom scheduler example — the paper's core promise: "users implement
// novel design in the scheduling logic module" (§3).
//
// We plug a new matching algorithm into the framework without touching any
// library source: an "oldest-cell-first" arbiter that favours the
// input/output pair whose head packet has waited longest is approximated
// here by a longest-queue-first pass with ageing weights.  One
// PolicyRegistry registration makes it constructible from the spec string
// "aged-greedy" everywhere — set_policies, ScenarioSpec sweeps, the
// explorer CLI — after which it is compared against stock iSLIP on the
// same workload.
#include <cstdio>
#include <memory>

#include "core/framework.hpp"
#include "schedulers/matcher.hpp"
#include "schedulers/policy_registry.hpp"
#include "stats/table.hpp"
#include "topo/testbed.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

/// A user-provided scheduling algorithm: greedy on demand x age.
///
/// The framework only requires MatchingAlgorithm's four virtuals.  State
/// kept across invocations (here: an age counter per pair) is how iSLIP's
/// pointers work too — the interface is deliberately stateful.  The edge
/// workspace is a member for the same reason the library matchers keep
/// theirs: compute_into must not allocate in steady state.
class AgedGreedyMatcher final : public schedulers::MatchingAlgorithm {
 public:
  explicit AgedGreedyMatcher(std::uint32_t ports)
      : ports_{ports}, age_(static_cast<std::size_t>(ports) * ports, 0) {}

  void compute_into(const demand::DemandMatrix& dem, schedulers::Matching& out) override {
    edges_.clear();
    dem.for_each_nonzero([&](net::PortId i, net::PortId j, std::int64_t w) {
      const double age = static_cast<double>(age_[idx(i, j)]);
      edges_.push_back({static_cast<double>(w) * (1.0 + 0.25 * age), i, j});
    });
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.i != b.i) return a.i < b.i;
      return a.j < b.j;
    });

    out.reset(ports_, ports_);
    last_iterations_ = 0;
    for (const Edge& e : edges_) {
      if (!out.input_matched(e.i) && !out.output_matched(e.j)) {
        out.match(e.i, e.j);
        ++last_iterations_;
      }
    }
    // Age every requesting-but-unserved pair; reset served ones.
    dem.for_each_nonzero([&](net::PortId i, net::PortId j, std::int64_t) {
      auto& a = age_[idx(i, j)];
      const auto granted = out.output_of(i);
      a = (granted.has_value() && *granted == j) ? 0 : a + 1;
    });
  }

  [[nodiscard]] std::string name() const override { return "aged-greedy"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override {
    return last_iterations_;
  }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

 private:
  struct Edge {
    double score;
    net::PortId i, j;
  };

  [[nodiscard]] std::size_t idx(net::PortId i, net::PortId j) const {
    return static_cast<std::size_t>(i) * ports_ + j;
  }

  std::uint32_t ports_;
  std::vector<std::uint64_t> age_;
  std::vector<Edge> edges_;
  std::uint32_t last_iterations_{0};
};

/// Self-registration: after this, "aged-greedy" is a spec string like any
/// built-in — this is the whole integration surface.
const bool kRegistered = [] {
  schedulers::PolicyRegistry::instance().register_matcher(
      "aged-greedy",
      [](const schedulers::PolicySpec&, const schedulers::PolicyContext& ctx) {
        return std::make_unique<AgedGreedyMatcher>(ctx.ports);
      });
  return true;
}();

core::RunReport evaluate(const char* matcher_spec) {
  core::FrameworkConfig c;
  c.ports = 8;
  c.discipline = core::SchedulingDiscipline::kSlotted;
  c.slot_time = sim::Time::nanoseconds(12'500);
  c.ocs_reconfig = 50_ns;
  core::HybridSwitchFramework fw{c};
  fw.set_policies(core::PolicyStack{}.with_matcher(matcher_spec));

  // A skewed workload where starvation matters: Zipf destinations.
  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kPoissonZipf;
  spec.load = 0.6;
  spec.skew = 1.1;
  spec.seed = 7;
  topo::attach_workload(fw, spec);
  return fw.run(20_ms, 4_ms);
}

}  // namespace

int main() {
  std::printf("Plugging a custom scheduling algorithm into the framework\n");
  std::printf("(the paper's 'users implement novel design in the scheduling logic')\n\n");
  if (!kRegistered) return 1;  // unreachable; anchors the registration

  stats::Table t{{"algorithm", "delivery", "p50 latency", "p99 latency", "max latency"}};
  for (const char* spec : {"aged-greedy", "islip:2"}) {
    const core::RunReport r = evaluate(spec);
    t.row()
        .cell(spec == std::string{"aged-greedy"} ? "aged-greedy (custom)" : "islip-i2 (stock)")
        .cell(r.delivery_ratio(), 3)
        .cell(r.latency.quantile_time(0.50).to_string())
        .cell(r.latency.quantile_time(0.99).to_string())
        .cell(sim::Time::picoseconds(r.latency.max()).to_string());
  }
  std::printf("%s\n", t.markdown().c_str());
  std::printf("The ageing term bounds worst-case waiting on skewed traffic (compare max\n"
              "latency) — the kind of design-space exploration the framework enables.\n");
  return 0;
}
