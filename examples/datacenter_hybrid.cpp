// Datacenter hybrid ToR scenario — the workload the paper's introduction
// motivates: a rack whose servers mix long bulk transfers (backup /
// shuffle), short RPC-style flows, and interactive VOIP-like streams, on a
// hybrid switch whose OCS serves the bursts and whose EPS serves the rest.
//
// Compares three circuit schedulers on identical traffic:
//   * c-Through  (single max-weight circuit day per epoch)
//   * Helios TMS (k BvN permutation days per epoch)
//   * Solstice   (threshold-halving with reconfiguration amortisation)
#include <cstdio>
#include <memory>

#include "core/framework.hpp"
#include "stats/table.hpp"
#include "topo/testbed.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

core::RunReport run_with(const char* scheduler) {
  core::FrameworkConfig c;
  c.ports = 16;
  c.link_rate = sim::DataRate::gbps(10);
  c.eps_rate = sim::DataRate::mbps(2500);  // 4:1 electrical oversubscription
  c.eps_buffer_bytes = 4 << 20;
  c.ocs_reconfig = 2_us;
  c.epoch = 200_us;
  c.min_circuit_hold = 20_us;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;

  core::HybridSwitchFramework fw{c};
  // `scheduler` is a circuit-scheduler spec: "cthrough", "tms:4" or
  // "solstice:10" (amortisation 10x the dark-time cost).
  fw.set_policies(core::PolicyStack{}.with_circuit(scheduler));

  // Bulk transfers: line-rate ON/OFF bursts on every server.
  topo::WorkloadSpec bulk;
  bulk.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  bulk.mean_on = 100_us;
  bulk.mean_off = 300_us;
  bulk.seed = 101;
  topo::attach_workload(fw, bulk);

  // RPC mice: a small Poisson floor everywhere.
  topo::WorkloadSpec mice;
  mice.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  mice.load = 0.05;
  mice.seed = 103;
  topo::attach_workload(fw, mice);

  // Interactive streams between 6 server pairs.
  topo::attach_voip(fw, 6, 20_us, 200);

  return fw.run(25_ms, 5_ms);
}

}  // namespace

int main() {
  std::printf("Hybrid ToR under a mixed datacenter workload (16 servers, 10G optical,\n"
              "2.5G electrical): bulk bursts + RPC mice + VOIP streams.\n");

  stats::Table t{{"circuit scheduler", "delivery", "ocs share", "reconfigs", "duty",
                  "bulk+mice p99", "voip p99", "voip jitter"}};
  for (const char* sched : {"cthrough", "tms:4", "solstice:10"}) {
    const core::RunReport r = run_with(sched);
    const double total = static_cast<double>(r.ocs_bytes + r.eps_bytes);
    char jitter[32];
    std::snprintf(jitter, sizeof jitter, "%.2f us", r.jitter_us.mean());
    t.row()
        .cell(sched)
        .cell(r.delivery_ratio(), 3)
        .cell(total > 0 ? static_cast<double>(r.ocs_bytes) / total : 0.0, 3)
        .cell(r.reconfigurations)
        .cell(r.ocs_duty_cycle, 3)
        .cell(r.latency.quantile_time(0.99).to_string())
        .cell(r.latency_sensitive.quantile_time(0.99).to_string())
        .cell(jitter);
  }
  std::printf("\n%s\n", t.markdown().c_str());
  std::printf("All three baselines run on the *same* framework with only the scheduling-\n"
              "logic plugin swapped — the rapid-prototyping loop the paper argues for.\n");
  return 0;
}
