// Quickstart: assemble a hybrid electrical/optical switch, attach traffic,
// run it, and read the report.
//
//   $ ./examples/quickstart
//
// This is the smallest complete use of the public API:
//   1. describe the switch (FrameworkConfig),
//   2. pick the scheduling policies (or take the defaults),
//   3. attach workloads,
//   4. run and inspect the RunReport.
#include <cstdio>

#include "core/framework.hpp"
#include "topo/testbed.hpp"

int main() {
  using namespace xdrs;
  using namespace xdrs::sim::literals;

  // 1. An 8-port hybrid ToR: 10 Gbps per port, an optical circuit switch
  //    that needs 1 us to retune, and an electrical packet switch for the
  //    residual traffic.  Buffering lives in the switch (fast scheduling).
  core::FrameworkConfig config;
  config.ports = 8;
  config.link_rate = sim::DataRate::gbps(10);
  config.ocs_reconfig = 1_us;
  config.epoch = 100_us;  // replan circuits every 100 us
  config.discipline = core::SchedulingDiscipline::kHybridEpoch;
  config.placement = core::BufferPlacement::kToRSwitch;

  core::HybridSwitchFramework framework{config};

  // 2. Default policy stack: instantaneous (VOQ-register) demand
  //    estimation, hardware-pipeline timing, Solstice circuit planning.
  framework.use_default_policies();

  // 3. Traffic: every port offers 40% load of datacenter-mix packets to
  //    uniformly random destinations.
  topo::WorkloadSpec workload;
  workload.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  workload.load = 0.4;
  topo::attach_workload(framework, workload);

  // 4. Run 5 ms of simulated time after 1 ms of warm-up.
  const core::RunReport report = framework.run(5_ms, 1_ms);

  std::printf("offered    : %llu packets\n",
              static_cast<unsigned long long>(report.offered_packets));
  std::printf("delivered  : %llu packets (%.1f%% of bytes)\n",
              static_cast<unsigned long long>(report.delivered_packets),
              report.delivery_ratio() * 100.0);
  std::printf("via OCS    : %s\n",
              sim::format_bytes(static_cast<double>(report.ocs_bytes)).c_str());
  std::printf("via EPS    : %s\n",
              sim::format_bytes(static_cast<double>(report.eps_bytes)).c_str());
  std::printf("latency    : %s\n", report.latency.summary_time().c_str());
  std::printf("reconfigs  : %llu (duty cycle %.2f)\n",
              static_cast<unsigned long long>(report.reconfigurations),
              report.ocs_duty_cycle);
  std::printf("peak buffer: %s in the ToR\n",
              sim::format_bytes(static_cast<double>(report.peak_switch_buffer_bytes)).c_str());
  return 0;
}
